"""The versioned scenario document schema (``cedar-repro/scenario/v1``).

A *scenario* is a data description of a phase-program workload: an
optional init section, ``n_steps`` repetitions of a step template of
serial sections and parallel loops, optional machine-topology overrides
and optional background traffic, plus the default ``(P, scale, seed)``
point to run it at.  It is everything an
:class:`~repro.apps.base.AppModel` is -- but as a versioned, validated,
diffable JSON/YAML artifact instead of a Python class, in the spirit of
gem5's standardized simulation configs.

Validation discipline
---------------------
Validation is *eager* and *total*: :func:`parse_scenario` walks the
whole document, rejects unknown fields at every level, checks every
range the downstream :class:`~repro.runtime.loops.ParallelLoop` /
:class:`~repro.hardware.config.CedarConfig` constructors would check,
and reports failures as :class:`ScenarioError` carrying the precise
document path (``loops[2].mem_rate: must be in (0, 1]``).  A document
that parses is guaranteed to compile and run; a document that does not
parse fails with :class:`ScenarioError` and nothing else.  The fuzzing
suite (``tests/scenario/``) holds both halves of that contract.

Canonical form
--------------
:func:`scenario_to_dict` is a pure function of the document (optional
sections are omitted when they hold their defaults, loop objects are
always written in full), so save -> load -> save round-trips
byte-identically.  :func:`canonical_scenario_json` (compact, sorted
keys) feeds :func:`scenario_digest` -- the BLAKE2 fingerprint that
names the workload in result-cache cell keys
(:func:`repro.parallel.cache.cell_key`): two scenario files that merely
share a ``name`` can never collide.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.runtime.loops import LoopConstruct

__all__ = [
    "SCENARIO_SCHEMA",
    "BackgroundTraffic",
    "InitSection",
    "LoopSpec",
    "ScenarioDefaults",
    "ScenarioDoc",
    "ScenarioError",
    "SerialSection",
    "canonical_scenario_json",
    "load_scenario",
    "parse_scenario",
    "save_scenario",
    "scenario_digest",
    "scenario_to_dict",
]

SCENARIO_SCHEMA = "cedar-repro/scenario/v1"

#: Default workload scale, matching ``repro.core.runner.DEFAULT_SCALE``
#: (imported lazily there to keep this module dependency-light).
_DEFAULT_SCALE = 0.02

#: Loop construct names accepted by the schema, in catalogue order.
CONSTRUCT_NAMES = tuple(construct.value for construct in LoopConstruct)

#: Machine-override fields, by the type each value must carry.  The
#: names mirror :class:`repro.hardware.config.CedarConfig`; anything
#: else under ``machine`` is rejected.
MACHINE_INT_FIELDS = frozenset(
    {
        "n_clusters",
        "ces_per_cluster",
        "n_memory_modules",
        "cycle_ns",
        "memory_service_cycles",
        "switch_radix",
        "link_cycles",
        "gi_cycles",
        "switch_queue_depth",
        "vector_window",
        "global_memory_bytes",
        "cluster_memory_bytes",
        "page_bytes",
    }
)
MACHINE_FLOAT_FIELDS = frozenset(
    {"cluster_channel_words_per_cycle", "vector_issue_rate"}
)
MACHINE_BOOL_FIELDS = frozenset({"model_cluster_cache"})
MACHINE_FIELDS = MACHINE_INT_FIELDS | MACHINE_FLOAT_FIELDS | MACHINE_BOOL_FIELDS


class ScenarioError(ValueError):
    """A scenario document is malformed.

    ``path`` locates the offending field in JSON-ish dotted/indexed
    notation (``loops[2].mem_rate``, ``machine.n_clusters``, ``$`` for
    the document root); ``reason`` says what is wrong with it.
    """

    def __init__(self, path: str, reason: str) -> None:
        self.path = path or "$"
        self.reason = reason
        super().__init__(f"{self.path}: {reason}")


# ---------------------------------------------------------------------------
# Document model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioDefaults:
    """The ``(P, scale, seed)`` point a scenario runs at by default."""

    n_processors: int = 32
    scale: float = _DEFAULT_SCALE
    seed: int = 1994


@dataclass(frozen=True)
class BackgroundTraffic:
    """A competing Xylem process time-sharing the clusters.

    Compiles onto :class:`repro.xylem.scheduler.BackgroundWorkload`;
    the paper's own measurements are single-user, so this section is
    how a scenario opts *into* multiprogrammed interference.
    """

    share: float
    quantum_ns: int
    coscheduled: bool = False
    seed: int = 7


@dataclass(frozen=True)
class InitSection:
    """The one-off initialisation phase."""

    serial_ns: int = 0
    pages: int = 0


@dataclass(frozen=True)
class SerialSection:
    """The serial code of each time step."""

    per_step_ns: int = 0
    pages: int = 0
    syscalls: int = 0
    mem_fraction: float = 0.0
    mem_rate: float = 0.3


@dataclass(frozen=True)
class LoopSpec:
    """One parallel loop of the step template.

    Field semantics match :class:`repro.apps.base.LoopShape` exactly --
    the compiler is a transliteration, never an interpretation.
    """

    construct: str
    n_inner: int
    iter_time_ns: int
    n_outer: int = 1
    mem_fraction: float = 0.3
    mem_rate: float = 0.5
    iters_per_page: int = 0
    fresh_pages_each_step: bool = False
    work_skew: float = 0.0
    cluster_ws_bytes: int = 0
    label: str = ""


@dataclass(frozen=True)
class ScenarioDoc:
    """A parsed, validated scenario document."""

    name: str
    n_steps: int
    loops: tuple[LoopSpec, ...]
    description: str = ""
    defaults: ScenarioDefaults = ScenarioDefaults()
    #: Machine-topology overrides as canonically-sorted ``(field,
    #: value)`` pairs (kept hashable); see :data:`MACHINE_FIELDS`.
    machine: tuple[tuple[str, int | float | bool], ...] = ()
    background: BackgroundTraffic | None = None
    init: InitSection = InitSection()
    serial: SerialSection = SerialSection()

    @property
    def machine_overrides(self) -> dict[str, int | float | bool]:
        """The topology overrides as a plain keyword dict."""
        return dict(self.machine)


# ---------------------------------------------------------------------------
# Field readers (each failure names its precise path)
# ---------------------------------------------------------------------------

_MISSING = object()


def _require_mapping(value: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ScenarioError(path, f"must be an object, got {type(value).__name__}")
    for key in value:
        if not isinstance(key, str):
            raise ScenarioError(path, f"object keys must be strings, got {key!r}")
    return value


def _reject_unknown(data: Mapping[str, Any], allowed: frozenset[str] | set[str], path: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ScenarioError(path, f"unknown field(s) {unknown}; allowed: {sorted(allowed)}")


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


def _get_str(
    data: Mapping[str, Any], key: str, path: str, default: Any = _MISSING
) -> str:
    value = data.get(key, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ScenarioError(_join(path, key), "is required")
        return str(default)
    if not isinstance(value, str):
        raise ScenarioError(
            _join(path, key), f"must be a string, got {type(value).__name__}"
        )
    return value


def _get_bool(
    data: Mapping[str, Any], key: str, path: str, default: Any = _MISSING
) -> bool:
    value = data.get(key, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ScenarioError(_join(path, key), "is required")
        return bool(default)
    if not isinstance(value, bool):
        raise ScenarioError(
            _join(path, key), f"must be a boolean, got {type(value).__name__}"
        )
    return value


def _check_int(value: Any, path: str, lo: int | None, hi: int | None) -> int:
    # bool is an int subclass; a scenario saying ``"n_steps": true`` is
    # junk, not one step.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(path, f"must be an integer, got {type(value).__name__}")
    if lo is not None and value < lo:
        raise ScenarioError(path, f"must be >= {lo}, got {value}")
    if hi is not None and value > hi:
        raise ScenarioError(path, f"must be <= {hi}, got {value}")
    return value


def _get_int(
    data: Mapping[str, Any],
    key: str,
    path: str,
    default: Any = _MISSING,
    lo: int | None = None,
    hi: int | None = None,
) -> int:
    value = data.get(key, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ScenarioError(_join(path, key), "is required")
        return int(default)
    return _check_int(value, _join(path, key), lo, hi)


def _get_float(
    data: Mapping[str, Any],
    key: str,
    path: str,
    default: Any = _MISSING,
    lo: float | None = None,
    hi: float | None = None,
    lo_open: bool = False,
    hi_open: bool = False,
) -> float:
    value = data.get(key, _MISSING)
    if value is _MISSING:
        if default is _MISSING:
            raise ScenarioError(_join(path, key), "is required")
        return float(default)
    where = _join(path, key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(where, f"must be a number, got {type(value).__name__}")
    number = float(value)
    if number != number or number in (float("inf"), float("-inf")):
        raise ScenarioError(where, f"must be finite, got {value!r}")
    lo_text = f"({lo}" if lo_open else f"[{lo}"
    hi_text = f"{hi})" if hi_open else f"{hi}]"
    bounds = f"must be in {lo_text}, {hi_text}, got {value!r}"
    if lo is not None and (number < lo or (lo_open and number == lo)):
        raise ScenarioError(where, bounds)
    if hi is not None and (number > hi or (hi_open and number == hi)):
        raise ScenarioError(where, bounds)
    return number


# ---------------------------------------------------------------------------
# Section parsers
# ---------------------------------------------------------------------------


def _parse_defaults(data: Any, path: str) -> ScenarioDefaults:
    section = _require_mapping(data, path)
    _reject_unknown(section, {"n_processors", "scale", "seed"}, path)
    return ScenarioDefaults(
        n_processors=_get_int(section, "n_processors", path, default=32, lo=1),
        scale=_get_float(
            section, "scale", path, default=_DEFAULT_SCALE, lo=0.0, hi=1.0, lo_open=True
        ),
        seed=_get_int(section, "seed", path, default=1994, lo=0),
    )


def _parse_machine(data: Any, path: str) -> tuple[tuple[str, int | float | bool], ...]:
    section = _require_mapping(data, path)
    _reject_unknown(section, MACHINE_FIELDS, path)
    overrides: dict[str, int | float | bool] = {}
    for key in sorted(section):
        where = _join(path, key)
        if key in MACHINE_INT_FIELDS:
            overrides[key] = _check_int(section[key], where, lo=1, hi=None)
        elif key in MACHINE_FLOAT_FIELDS:
            overrides[key] = _get_float(
                section, key, path, lo=0.0, hi=None, lo_open=True
            )
        else:  # MACHINE_BOOL_FIELDS
            overrides[key] = _get_bool(section, key, path)
    if "switch_radix" in overrides and int(overrides["switch_radix"]) < 2:
        raise ScenarioError(_join(path, "switch_radix"), "must be >= 2")
    return tuple(sorted(overrides.items()))


def _parse_background(data: Any, path: str) -> BackgroundTraffic:
    section = _require_mapping(data, path)
    _reject_unknown(section, {"share", "quantum_ns", "coscheduled", "seed"}, path)
    return BackgroundTraffic(
        share=_get_float(
            section, "share", path, lo=0.0, hi=1.0, lo_open=True, hi_open=True
        ),
        quantum_ns=_get_int(section, "quantum_ns", path, lo=1),
        coscheduled=_get_bool(section, "coscheduled", path, default=False),
        seed=_get_int(section, "seed", path, default=7, lo=0),
    )


def _parse_init(data: Any, path: str) -> InitSection:
    section = _require_mapping(data, path)
    _reject_unknown(section, {"serial_ns", "pages"}, path)
    return InitSection(
        serial_ns=_get_int(section, "serial_ns", path, default=0, lo=0),
        pages=_get_int(section, "pages", path, default=0, lo=0),
    )


def _parse_serial(data: Any, path: str) -> SerialSection:
    section = _require_mapping(data, path)
    _reject_unknown(
        section, {"per_step_ns", "pages", "syscalls", "mem_fraction", "mem_rate"}, path
    )
    return SerialSection(
        per_step_ns=_get_int(section, "per_step_ns", path, default=0, lo=0),
        pages=_get_int(section, "pages", path, default=0, lo=0),
        syscalls=_get_int(section, "syscalls", path, default=0, lo=0),
        mem_fraction=_get_float(
            section, "mem_fraction", path, default=0.0, lo=0.0, hi=1.0, hi_open=True
        ),
        mem_rate=_get_float(
            section, "mem_rate", path, default=0.3, lo=0.0, hi=1.0, lo_open=True
        ),
    )


_LOOP_FIELDS = frozenset(
    {
        "construct",
        "n_outer",
        "n_inner",
        "iter_time_ns",
        "mem_fraction",
        "mem_rate",
        "iters_per_page",
        "fresh_pages_each_step",
        "work_skew",
        "cluster_ws_bytes",
        "label",
    }
)


def _parse_loop(data: Any, path: str) -> LoopSpec:
    section = _require_mapping(data, path)
    _reject_unknown(section, _LOOP_FIELDS, path)
    construct = _get_str(section, "construct", path)
    if construct not in CONSTRUCT_NAMES:
        raise ScenarioError(
            _join(path, "construct"),
            f"unknown construct {construct!r}; expected one of {list(CONSTRUCT_NAMES)}",
        )
    n_outer = _get_int(section, "n_outer", path, default=1, lo=1)
    if construct != LoopConstruct.SDOALL.value and n_outer != 1:
        raise ScenarioError(
            _join(path, "n_outer"),
            f"{construct} loops have no outer spread iterations (n_outer must be 1)",
        )
    iters_per_page = _get_int(section, "iters_per_page", path, default=0, lo=0)
    fresh = _get_bool(section, "fresh_pages_each_step", path, default=False)
    if fresh and iters_per_page == 0:
        raise ScenarioError(
            _join(path, "fresh_pages_each_step"),
            "requires paging (set iters_per_page >= 1)",
        )
    return LoopSpec(
        construct=construct,
        n_outer=n_outer,
        n_inner=_get_int(section, "n_inner", path, lo=1),
        iter_time_ns=_get_int(section, "iter_time_ns", path, lo=1),
        mem_fraction=_get_float(
            section, "mem_fraction", path, default=0.3, lo=0.0, hi=1.0, hi_open=True
        ),
        mem_rate=_get_float(
            section, "mem_rate", path, default=0.5, lo=0.0, hi=1.0, lo_open=True
        ),
        iters_per_page=iters_per_page,
        fresh_pages_each_step=fresh,
        work_skew=_get_float(
            section, "work_skew", path, default=0.0, lo=0.0, hi=1.0, hi_open=True
        ),
        cluster_ws_bytes=_get_int(section, "cluster_ws_bytes", path, default=0, lo=0),
        label=_get_str(section, "label", path, default=""),
    )


_TOP_FIELDS = frozenset(
    {
        "schema",
        "name",
        "description",
        "defaults",
        "machine",
        "background",
        "init",
        "n_steps",
        "serial",
        "loops",
    }
)


def parse_scenario(data: Any) -> ScenarioDoc:
    """Parse and validate one scenario document.

    Raises :class:`ScenarioError` -- and only :class:`ScenarioError` --
    on any malformation, carrying the precise document path.  A
    returned :class:`ScenarioDoc` is guaranteed to compile
    (:func:`repro.scenario.compiler.compile_scenario`) and run.
    """
    document = _require_mapping(data, "$")
    _reject_unknown(document, _TOP_FIELDS, "$")
    schema = _get_str(document, "schema", "")
    if schema != SCENARIO_SCHEMA:
        raise ScenarioError(
            "schema", f"expected {SCENARIO_SCHEMA!r}, got {schema!r}"
        )
    name = _get_str(document, "name", "")
    if not name:
        raise ScenarioError("name", "must be non-empty")
    loops_raw = document.get("loops", _MISSING)
    if loops_raw is _MISSING:
        raise ScenarioError("loops", "is required")
    if not isinstance(loops_raw, list) or not loops_raw:
        raise ScenarioError("loops", "must be a non-empty list of loop objects")
    loops = tuple(
        _parse_loop(raw, f"loops[{index}]") for index, raw in enumerate(loops_raw)
    )
    defaults = (
        _parse_defaults(document["defaults"], "defaults")
        if "defaults" in document
        else ScenarioDefaults()
    )
    machine = (
        _parse_machine(document["machine"], "machine")
        if "machine" in document
        else ()
    )
    doc = ScenarioDoc(
        name=name,
        n_steps=_get_int(document, "n_steps", "", lo=1),
        loops=loops,
        description=_get_str(document, "description", "", default=""),
        defaults=defaults,
        machine=machine,
        background=(
            _parse_background(document["background"], "background")
            if "background" in document
            else None
        ),
        init=_parse_init(document["init"], "init") if "init" in document else InitSection(),
        serial=(
            _parse_serial(document["serial"], "serial")
            if "serial" in document
            else SerialSection()
        ),
    )
    _check_topology(doc)
    return doc


def _check_topology(doc: ScenarioDoc) -> None:
    """Prove the machine overrides + default P build a valid config."""
    from repro.hardware.config import CedarConfig

    try:
        config = CedarConfig(**doc.machine_overrides)
    except (TypeError, ValueError) as exc:
        raise ScenarioError("machine", str(exc)) from exc
    try:
        config.with_processors(doc.defaults.n_processors)
    except ValueError as exc:
        raise ScenarioError("defaults.n_processors", str(exc)) from exc


# ---------------------------------------------------------------------------
# Canonical serialization
# ---------------------------------------------------------------------------


def scenario_to_dict(doc: ScenarioDoc) -> dict[str, Any]:
    """The canonical JSON-serialisable form of *doc*.

    Pure function of the document: loop objects always carry every
    field; optional sections are omitted when they hold their defaults.
    ``parse_scenario(scenario_to_dict(doc)) == doc`` for every valid
    document.
    """
    data: dict[str, Any] = {
        "schema": SCENARIO_SCHEMA,
        "name": doc.name,
        "description": doc.description,
        "defaults": {
            "n_processors": doc.defaults.n_processors,
            "scale": doc.defaults.scale,
            "seed": doc.defaults.seed,
        },
    }
    if doc.machine:
        data["machine"] = dict(doc.machine)
    if doc.background is not None:
        data["background"] = {
            "share": doc.background.share,
            "quantum_ns": doc.background.quantum_ns,
            "coscheduled": doc.background.coscheduled,
            "seed": doc.background.seed,
        }
    if doc.init != InitSection():
        data["init"] = {"serial_ns": doc.init.serial_ns, "pages": doc.init.pages}
    data["n_steps"] = doc.n_steps
    if doc.serial != SerialSection():
        data["serial"] = {
            "per_step_ns": doc.serial.per_step_ns,
            "pages": doc.serial.pages,
            "syscalls": doc.serial.syscalls,
            "mem_fraction": doc.serial.mem_fraction,
            "mem_rate": doc.serial.mem_rate,
        }
    data["loops"] = [
        {
            "construct": loop.construct,
            "n_outer": loop.n_outer,
            "n_inner": loop.n_inner,
            "iter_time_ns": loop.iter_time_ns,
            "mem_fraction": loop.mem_fraction,
            "mem_rate": loop.mem_rate,
            "iters_per_page": loop.iters_per_page,
            "fresh_pages_each_step": loop.fresh_pages_each_step,
            "work_skew": loop.work_skew,
            "cluster_ws_bytes": loop.cluster_ws_bytes,
            "label": loop.label,
        }
        for loop in doc.loops
    ]
    return data


def canonical_scenario_json(doc: ScenarioDoc) -> str:
    """Compact, key-sorted JSON -- the digest (and cache-key) input."""
    return json.dumps(scenario_to_dict(doc), sort_keys=True, separators=(",", ":"))


def scenario_digest(doc: ScenarioDoc) -> str:
    """BLAKE2 fingerprint of the canonical document.

    This is the value the result cache folds into scenario cell keys:
    equal digests mean byte-identical canonical documents, so two
    different scenario files that happen to share a ``name`` can never
    collide in the cache.
    """
    return hashlib.blake2b(
        canonical_scenario_json(doc).encode("utf-8"), digest_size=16
    ).hexdigest()


def load_scenario(path: str | Path) -> ScenarioDoc:
    """Load and validate a scenario file (JSON, or YAML by suffix).

    Raises :class:`ScenarioError` on unreadable files, parse errors and
    every schema violation alike -- callers need one except clause.
    """
    file = Path(path)
    try:
        text = file.read_text()
    except OSError as exc:
        raise ScenarioError("$", f"cannot read scenario file {file}: {exc}") from exc
    if file.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env without PyYAML
            raise ScenarioError(
                "$", "YAML scenarios need the optional PyYAML dependency; use JSON"
            ) from exc
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError("$", f"{file} is not valid YAML: {exc}") from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError("$", f"{file} is not valid JSON: {exc}") from exc
    return parse_scenario(data)


def save_scenario(doc: ScenarioDoc, path: str | Path) -> None:
    """Write *doc* canonically (pretty JSON, or YAML by suffix).

    The output round-trips: ``save -> load -> save`` produces
    byte-identical files.
    """
    file = Path(path)
    data = scenario_to_dict(doc)
    if file.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env without PyYAML
            raise ScenarioError(
                "$", "YAML scenarios need the optional PyYAML dependency; use JSON"
            ) from exc
        file.write_text(yaml.safe_dump(data, sort_keys=False))
    else:
        file.write_text(json.dumps(data, indent=2) + "\n")
