"""Round-tripping the built-in application models into scenario files.

:func:`scenario_from_model` reads an :class:`~repro.apps.base.AppModel`
back into a :class:`~repro.scenario.schema.ScenarioDoc`;
:func:`export_app` does it for the five Perfect-Benchmark builders.
The round trip is *exact*: compiling an exported scenario rebuilds a
model with identical phase programs, so runs -- and therefore golden
tables, fingerprints and schedule hashes -- are byte-identical to the
hand-coded originals.  ``tests/scenario/test_export.py`` and the golden
differential suite hold that contract.

:func:`write_examples` materialises the committed
``examples/scenarios/`` directory: the five exported apps plus two
synthetic scenarios exercising the document features the apps do not
(topology overrides, background traffic).
"""

from __future__ import annotations

from pathlib import Path

from repro.apps import PAPER_APPS
from repro.apps.base import AppModel
from repro.scenario.schema import (
    BackgroundTraffic,
    InitSection,
    LoopSpec,
    ScenarioDefaults,
    ScenarioDoc,
    ScenarioError,
    SerialSection,
    save_scenario,
)

__all__ = [
    "export_app",
    "scenario_from_model",
    "synthetic_examples",
    "write_examples",
]


def scenario_from_model(
    model: AppModel,
    description: str = "",
    defaults: ScenarioDefaults | None = None,
) -> ScenarioDoc:
    """Describe *model* as a scenario document (the inverse compiler)."""
    loops = tuple(
        LoopSpec(
            construct=shape.construct.value,
            n_outer=shape.n_outer,
            n_inner=shape.n_inner,
            iter_time_ns=shape.iter_time_ns,
            mem_fraction=shape.mem_fraction,
            mem_rate=shape.mem_rate,
            iters_per_page=shape.iters_per_page,
            fresh_pages_each_step=shape.fresh_pages_each_step,
            work_skew=shape.work_skew,
            cluster_ws_bytes=shape.cluster_ws_bytes,
            label=shape.label,
        )
        for shape in model.loops_per_step
    )
    return ScenarioDoc(
        name=model.name,
        n_steps=model.n_steps,
        loops=loops,
        description=description,
        defaults=defaults if defaults is not None else ScenarioDefaults(),
        init=InitSection(serial_ns=model.init_serial_ns, pages=model.init_pages),
        serial=SerialSection(
            per_step_ns=model.serial_per_step_ns,
            pages=model.serial_pages_per_step,
            syscalls=model.serial_syscalls_per_step,
            mem_fraction=model.serial_mem_fraction,
            mem_rate=model.serial_mem_rate,
        ),
    )


def export_app(name: str) -> ScenarioDoc:
    """Export one built-in Perfect-Benchmark app as a scenario."""
    key = name.upper()
    builder = PAPER_APPS.get(key)
    if builder is None:
        raise ScenarioError(
            "$", f"unknown application {name!r}; expected one of {sorted(PAPER_APPS)}"
        )
    return scenario_from_model(
        builder(),
        description=(
            f"{key} exported from the hand-coded model in "
            f"src/repro/apps/{key.lower()}.py; compiles and runs "
            f"byte-identically to `cedar-repro run --app {key.lower()}`."
        ),
    )


def synthetic_examples() -> tuple[ScenarioDoc, ScenarioDoc]:
    """The two committed synthetic examples.

    ``topology-sweep`` exercises machine overrides (a half-size Cedar
    with deeper switch queues); ``background-traffic`` exercises the
    multiprogramming section (a 25 % competitor at a 5 ms quantum).
    Both are sized to run in well under a second at their default
    scale, so they double as documentation *and* smoke-test inputs.
    """
    topology = ScenarioDoc(
        name="topology-sweep",
        description=(
            "A CXLMemSim-style what-if: the FLO52-like flux sweep on a "
            "half-size Cedar (2 clusters, 16 banks) with deeper switch "
            "queues. Compare against the stock topology to isolate the "
            "network's share of contention."
        ),
        n_steps=4,
        defaults=ScenarioDefaults(n_processors=16, scale=1.0, seed=1994),
        machine=(
            ("n_clusters", 2),
            ("n_memory_modules", 16),
            ("switch_queue_depth", 8),
        ),
        init=InitSection(serial_ns=20_000_000, pages=4),
        serial=SerialSection(per_step_ns=10_000_000, mem_fraction=0.2),
        loops=(
            LoopSpec(
                construct="sdoall",
                n_outer=5,
                n_inner=14,
                iter_time_ns=2_000_000,
                mem_fraction=0.55,
                mem_rate=0.6,
                work_skew=0.5,
                label="flux-sweep",
            ),
            LoopSpec(
                construct="xdoall",
                n_inner=96,
                iter_time_ns=500_000,
                mem_fraction=0.35,
                mem_rate=0.5,
                label="smoother",
            ),
        ),
    )
    background = ScenarioDoc(
        name="background-traffic",
        description=(
            "A multiprogramming what-if the paper's single-user "
            "measurements exclude: a cluster-local stencil time-shared "
            "against a 25% background competitor on a 5 ms quantum, "
            "clusters drifting independently (Xylem's actual behaviour)."
        ),
        n_steps=6,
        defaults=ScenarioDefaults(n_processors=8, scale=1.0, seed=1994),
        background=BackgroundTraffic(share=0.25, quantum_ns=5_000_000),
        serial=SerialSection(per_step_ns=5_000_000, syscalls=1),
        loops=(
            LoopSpec(
                construct="cluster_only",
                n_inner=48,
                iter_time_ns=400_000,
                mem_fraction=0.3,
                mem_rate=0.5,
                iters_per_page=16,
                label="stencil",
            ),
            LoopSpec(
                construct="cdoacross",
                n_inner=32,
                iter_time_ns=600_000,
                mem_fraction=0.4,
                mem_rate=0.5,
                label="pipeline",
            ),
        ),
    )
    return topology, background


def write_examples(directory: str | Path) -> list[Path]:
    """Write the seven example scenarios into *directory*.

    Five exported Perfect apps plus the two synthetic examples, all in
    canonical form -- re-running this over a clean checkout must be a
    no-op, which ``tests/scenario/test_export.py`` asserts.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name in PAPER_APPS:
        path = target / f"{name.lower()}.json"
        save_scenario(export_app(name), path)
        written.append(path)
    for doc in synthetic_examples():
        path = target / f"{doc.name}.json"
        save_scenario(doc, path)
        written.append(path)
    return written
