"""The declarative scenario DSL: workloads as versioned, validated data.

The paper characterizes five hand-ported Perfect Benchmarks; the north
star is a contention-characterization engine serving *arbitrary*
workloads.  This package opens the workload space: a scenario is a
JSON/YAML document (schema ``cedar-repro/scenario/v1``,
:mod:`repro.scenario.schema`) describing a phase program -- init
section, step template of serial sections and parallel loops, machine
topology overrides, background traffic, seeds -- that compiles
(:mod:`repro.scenario.compiler`) onto the existing
:class:`~repro.apps.base.AppModel` API, so sweeps, golden tables, cache
keys, telemetry and durable campaigns all work unchanged.

Correctness of the front-end is test-led:

* :mod:`repro.scenario.export` round-trips the five built-in apps into
  scenario files that recompile and run **byte-identically**;
* :mod:`repro.scenario.generate` draws seeded random-but-valid
  scenarios (the fuzz corpus);
* :mod:`repro.scenario.verify` is the per-scenario gauntlet -- two-run
  determinism, tie-break race sanitizing, pooled/cached byte-identity
  -- that CI's ``scenario-fuzz`` job maps over hundreds of draws.

See ``docs/scenarios.md`` for the schema reference and authoring guide,
and ``examples/scenarios/`` for ready-to-run documents.
"""

from repro.scenario.compiler import CompiledScenario, compile_scenario
from repro.scenario.export import (
    export_app,
    scenario_from_model,
    synthetic_examples,
    write_examples,
)
from repro.scenario.generate import generate_scenario, generate_scenarios
from repro.scenario.schema import (
    SCENARIO_SCHEMA,
    BackgroundTraffic,
    InitSection,
    LoopSpec,
    ScenarioDefaults,
    ScenarioDoc,
    ScenarioError,
    SerialSection,
    canonical_scenario_json,
    load_scenario,
    parse_scenario,
    save_scenario,
    scenario_digest,
    scenario_to_dict,
)
from repro.scenario.verify import ScenarioVerification, verify_scenario

__all__ = [
    "SCENARIO_SCHEMA",
    "BackgroundTraffic",
    "CompiledScenario",
    "InitSection",
    "LoopSpec",
    "ScenarioDefaults",
    "ScenarioDoc",
    "ScenarioError",
    "ScenarioVerification",
    "SerialSection",
    "canonical_scenario_json",
    "compile_scenario",
    "export_app",
    "generate_scenario",
    "generate_scenarios",
    "load_scenario",
    "parse_scenario",
    "save_scenario",
    "scenario_digest",
    "scenario_from_model",
    "scenario_to_dict",
    "synthetic_examples",
    "verify_scenario",
    "write_examples",
]
