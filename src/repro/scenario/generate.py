"""Seeded scenario generation: the structured workload fuzzer.

:func:`generate_scenarios` draws structurally-valid random scenario
documents from a seeded :func:`numpy.random.default_rng` stream --
thousands of distinct phase programs spanning every loop construct,
paging mode, skew, topology override and background-traffic setting the
schema can express, while staying small enough that a full
compile -> run -> re-run determinism check costs tens of milliseconds
per scenario.

Each draw is built as a raw document dict and then passed through
:func:`~repro.scenario.schema.parse_scenario`, so the generator cannot
emit anything the validator would reject: a generator bug fails loudly
here, not somewhere downstream.  The CI ``scenario-fuzz`` job and the
Hypothesis property suite both feed on this module.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.scenario.schema import ScenarioDoc, parse_scenario

__all__ = ["generate_scenario", "generate_scenarios"]

#: Construct mix: SDOALL dominates (as in the paper's codes), but every
#: construct appears often enough that a few hundred draws cover all.
_CONSTRUCTS = ("sdoall", "sdoall", "xdoall", "cluster_only", "cdoacross")

#: Processor counts drawn for scenario defaults.  Paper configurations
#: only -- fuzz runs exercise the same machines the tables do.
_PROCESSORS = (1, 4, 8, 16)

#: Safe topology-override menu: each entry keeps with_processors(P)
#: valid for every P in _PROCESSORS and the run time bounded.
_MACHINE_MENU: tuple[dict[str, int | float | bool], ...] = (
    {"n_memory_modules": 16},
    {"switch_queue_depth": 8},
    {"n_clusters": 2},
    {"vector_window": 8},
    {"cluster_channel_words_per_cycle": 1.1},
    {"n_clusters": 2, "n_memory_modules": 16, "switch_queue_depth": 2},
    {"model_cluster_cache": True},
)


def _draw_loop(rng: np.random.Generator, index: int) -> dict[str, Any]:
    construct = str(rng.choice(_CONSTRUCTS))
    loop: dict[str, Any] = {
        "construct": construct,
        "n_inner": int(rng.integers(1, 49)),
        "iter_time_ns": int(rng.integers(50_000, 1_000_001)),
        "mem_fraction": round(float(rng.uniform(0.0, 0.7)), 3),
        "mem_rate": round(float(rng.uniform(0.2, 1.0)), 3),
        "label": f"loop{index}-{construct}",
    }
    n_outer = 1
    if construct == "sdoall":
        n_outer = int(rng.integers(1, 9))
        loop["n_outer"] = n_outer
    if rng.random() < 0.5:
        # Page boundaries are kept aligned to outer-iteration waves
        # (iters_per_page a multiple of n_inner): each data page is then
        # cold-faulted by one *simultaneous* wave of CEs, which the VM
        # fault-join path resolves tie-break-robustly.  Misaligned pages
        # put stragglers' faults on the knife edge of an earlier fault's
        # completion instant, where join-vs-new classification is decided
        # by same-tick event order -- a genuine model limitation this
        # fuzzer surfaced (see docs/scenarios.md, "Paging alignment").
        loop["iters_per_page"] = loop["n_inner"] * int(rng.integers(1, n_outer + 1))
        loop["fresh_pages_each_step"] = bool(rng.random() < 0.4)
    if rng.random() < 0.4:
        loop["work_skew"] = round(float(rng.uniform(0.0, 0.9)), 3)
    if rng.random() < 0.2:
        loop["cluster_ws_bytes"] = int(rng.integers(1, 65)) * 4096
    return loop


def generate_scenario(rng: np.random.Generator, name: str) -> ScenarioDoc:
    """Draw one random-but-valid scenario document from *rng*."""
    data: dict[str, Any] = {
        "schema": "cedar-repro/scenario/v1",
        "name": name,
        "description": "seeded fuzz scenario",
        "defaults": {
            "n_processors": int(rng.choice(_PROCESSORS)),
            "scale": 1.0,
            "seed": int(rng.integers(0, 2**31)),
        },
        "n_steps": int(rng.integers(1, 4)),
        "loops": [
            _draw_loop(rng, index) for index in range(int(rng.integers(1, 4)))
        ],
    }
    if rng.random() < 0.6:
        serial: dict[str, Any] = {"per_step_ns": int(rng.integers(0, 2_000_001))}
        if rng.random() < 0.4:
            serial["pages"] = int(rng.integers(0, 5))
        if rng.random() < 0.4:
            serial["syscalls"] = int(rng.integers(0, 4))
        if rng.random() < 0.4:
            serial["mem_fraction"] = round(float(rng.uniform(0.0, 0.5)), 3)
        data["serial"] = serial
    if rng.random() < 0.5:
        data["init"] = {
            "serial_ns": int(rng.integers(0, 5_000_001)),
            "pages": int(rng.integers(0, 9)),
        }
    if rng.random() < 0.3:
        data["machine"] = dict(_MACHINE_MENU[int(rng.integers(len(_MACHINE_MENU)))])
    if rng.random() < 0.2:
        # Quanta well above the 1.5 ms context-switch cost, so the
        # competitor's switching overhead stays a modest fraction of
        # each period (_balance_os_budget stretches the run to cover
        # several periods).
        data["background"] = {
            "share": round(float(rng.uniform(0.1, 0.4)), 3),
            "quantum_ns": int(rng.integers(10_000_000, 25_000_001)),
            "coscheduled": bool(rng.random() < 0.5),
            "seed": int(rng.integers(0, 1000)),
        }
    _balance_os_budget(data)
    return parse_scenario(data)


#: Conservative worst-case OS charge estimates (ns), upper bounds on
#: the :class:`~repro.xylem.params.XylemParams` defaults: a cold page
#: faulted by a simultaneous wave (concurrent fault + joins + critical
#: sections), a sequentially-faulted serial/init page, and one parallel
#: loop dispatch (CPI gather across 8 CEs + sync + critical section).
_PAGE_WAVE_COST_NS = 4_000_000
_PAGE_SERIAL_COST_NS = 1_500_000
_LOOP_DISPATCH_COST_NS = 2_000_000
_SYSCALL_COST_NS = 500_000


def _balance_os_budget(data: dict[str, Any]) -> None:
    """Stretch loop iteration times until OS charges cannot dominate.

    The accounting model books every cluster's OS activity on a single
    per-cluster timeline (the paper's Q facility), so a workload whose
    *worst-case* OS charges approach its wall time is outside the
    model's measurable envelope -- ``breakdown()`` rejects it.  The
    fuzzer must stay inside the envelope: estimate the OS bill from the
    draw (faults, loop dispatches, syscalls, background context
    switches), lower-bound the wall time by perfectly-sped-up work, and
    scale every loop's ``iter_time_ns`` so the bill stays under ~35 %
    of the wall.  Scaling only iteration *times* preserves the draw's
    structure (constructs, trip counts, paging pattern, event counts).
    """
    steps = int(data["n_steps"])
    serial = data.get("serial", {})
    init = data.get("init", {})
    P = int(data["defaults"]["n_processors"])

    os_ns = float(init.get("pages", 0) * _PAGE_SERIAL_COST_NS)
    os_ns += steps * serial.get("pages", 0) * _PAGE_SERIAL_COST_NS
    os_ns += steps * serial.get("syscalls", 0) * _SYSCALL_COST_NS
    work_per_step = 0.0
    for loop in data["loops"]:
        iters = loop.get("n_outer", 1) * loop["n_inner"]
        os_ns += steps * _LOOP_DISPATCH_COST_NS
        if loop.get("iters_per_page", 0) > 0:
            pages = -(-iters // loop["iters_per_page"])
            waves = steps if loop.get("fresh_pages_each_step", False) else 1
            os_ns += waves * pages * _PAGE_WAVE_COST_NS
        work_per_step += iters * loop["iter_time_ns"] / P
    wall_lb = (
        init.get("serial_ns", 0)
        + steps * (serial.get("per_step_ns", 0) + work_per_step)
    )

    required = os_ns / 0.35
    background = data.get("background")
    if background is not None:
        # Long enough for several scheduling periods, and OS share of
        # each period (two switches) bounded by the quantum floor.
        period = background["quantum_ns"] / background["share"]
        required = max(required, 3.0 * period)
    if wall_lb >= required or work_per_step <= 0:
        return
    boost = -(-int(required - wall_lb + steps * work_per_step) // int(
        steps * work_per_step
    ))
    for loop in data["loops"]:
        loop["iter_time_ns"] = int(loop["iter_time_ns"]) * boost


def generate_scenarios(seed: int, n: int) -> list[ScenarioDoc]:
    """Generate *n* seeded scenarios (deterministic in ``(seed, n)``).

    The stream is drawn sequentially from one
    ``np.random.default_rng(seed)``, so ``generate_scenarios(s, n)`` is
    a prefix of ``generate_scenarios(s, m)`` for ``n <= m`` -- CI can
    raise its fuzz budget without re-testing different scenarios.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    rng = np.random.default_rng(seed)
    return [
        generate_scenario(rng, f"fuzz-{seed:x}-{index:04d}") for index in range(n)
    ]
