"""Xylem virtual-memory model: demand paging with concurrent faults.

Xylem provides multitasking and virtual-memory management of the Cedar
memory system (Section 2).  The paper distinguishes *sequential* page
faults (one CE touches a not-yet-accessed page) from the more expensive
*concurrent* page faults (two or more CEs simultaneously attempt to
access the same new page, typical of parallel loops sweeping new data),
and observes that concurrent faults cost up to 3 % of completion time
(Section 5.1).

The model keeps a resident-page set per Xylem process address space.
The first toucher of a non-resident page services a fault; CEs that
touch the page while the fault is still in flight join it, and the
fault is then classified concurrent for every participant.

When a maximum resident-set size is configured (the machine's 64 MB
global memory holds 16K 4 KB pages), faulting a page in past the limit
evicts the least-recently-faulted page FIFO-style, charging a write-back
cost; re-touching an evicted page faults again, so thrashing emerges
under memory pressure (``tests/xylem/test_vm_replacement.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Generator, Iterable

from repro.sim import Event, Simulator
from repro.xylem.accounting import TimeAccounting
from repro.xylem.categories import OsActivity
from repro.xylem.params import XylemParams

__all__ = ["VirtualMemory", "FaultStats"]


class FaultStats:
    """Counters of fault activity."""

    __slots__ = ("sequential", "concurrent", "joined", "evictions")

    def __init__(self) -> None:
        self.sequential = 0
        self.concurrent = 0
        self.joined = 0
        self.evictions = 0


class _InFlightFault:
    """Bookkeeping for a fault currently being serviced."""

    __slots__ = ("resolved", "participants", "primary_cluster")

    def __init__(self, resolved: Event, primary_cluster: int) -> None:
        self.resolved = resolved
        self.participants = 1
        self.primary_cluster = primary_cluster


class VirtualMemory:
    """Demand-paged address space shared by a Xylem process's tasks."""

    def __init__(
        self,
        sim: Simulator,
        accounting: TimeAccounting,
        params: XylemParams,
        critical_sections=None,
        cpi_handler=None,
        max_resident_pages: int | None = None,
        fastpath=None,
    ) -> None:
        self.sim = sim
        self.accounting = accounting
        self.params = params
        self.critical_sections = critical_sections
        self.cpi_handler = cpi_handler
        #: Shared :class:`repro.xylem.fastpath.XylemFastPath` engine
        #: (``None`` when constructed standalone: always exact).
        self.fastpath = fastpath
        if max_resident_pages is not None and max_resident_pages <= 0:
            raise ValueError(
                f"max_resident_pages must be positive, got {max_resident_pages}"
            )
        self.max_resident_pages = max_resident_pages
        self._resident: OrderedDict[int, None] = OrderedDict()
        self._in_flight: dict[int, _InFlightFault] = {}
        self.stats = FaultStats()

    def is_resident(self, page: int) -> bool:
        """Whether *page* has been faulted in."""
        return page in self._resident

    @property
    def resident_pages(self) -> int:
        """Number of resident pages."""
        return len(self._resident)

    def touch(self, cluster_id: int, page: int) -> Generator:
        """Process: one CE touches *page*, faulting it in if needed."""
        if page in self._resident:
            return
        params = self.params
        fault = self._in_flight.get(page)
        if fault is not None:
            # Joined an in-flight fault: the fault becomes concurrent;
            # the joiner pays trap-and-wait bookkeeping while the
            # primary's service continues.
            fault.participants += 1
            self.stats.joined += 1
            if fault.participants <= params.pgflt_join_charge_cap:
                join_ns = params.pgflt_join_cost_ns
            else:
                # Late joiners find the fault nearly resolved: a quick
                # trap and re-check, not a full wait bookkeeping.
                join_ns = params.pgflt_trap_light_ns
            self.accounting.charge(cluster_id, OsActivity.PGFLT_CONCURRENT, join_ns)
            yield fault.resolved
            return
        # First toucher: service the fault.
        fault = _InFlightFault(self.sim.event(), cluster_id)
        self._in_flight[page] = fault
        if self.critical_sections is not None:
            fp = self.fastpath
            for _ in range(params.crsect_per_fault):
                if fp is not None and fp.on:
                    fp.stats.fused_spawns += 1
                    yield from self.critical_sections.access_cluster(
                        cluster_id, params.crsect_cluster_cost_ns
                    )
                else:
                    yield self.sim.process(
                        self.critical_sections.access_cluster(
                            cluster_id, params.crsect_cluster_cost_ns
                        ),
                        name="vm-crsect",
                    )
        yield params.pgflt_sequential_cost_ns
        # Classify and resolve at the end of the tick: a CE touching the
        # page in the same nanosecond the service completes would
        # otherwise race both the participant count and the residency
        # transition -- event-queue insertion order deciding between
        # "join the fault" and "page already resident" (an order-
        # dependence hazard, see repro.analyze.race).  Deferring the
        # commit makes every same-instant toucher a joiner.
        self.sim.call_at_tail(lambda _event: self._classify(cluster_id, page, fault))
        # The faulting CE stays trapped until the commit (which a
        # concurrent fault's CPI gather may extend).
        yield fault.resolved

    def _classify(self, cluster_id: int, page: int, fault: _InFlightFault) -> None:
        """Commit a serviced fault (end-of-tick, all joiners counted)."""
        params = self.params
        if fault.participants > 1:
            self.stats.concurrent += 1
            self.accounting.charge(
                cluster_id, OsActivity.PGFLT_CONCURRENT, params.pgflt_concurrent_cost_ns
            )
            if self.cpi_handler is not None and self._want_cpi(fault):
                # The CPI gather extends the fault's service: resolution
                # waits for it, and late touchers keep joining meanwhile.
                self.sim.process(
                    self._cpi_then_resolve(cluster_id, page, fault), name="vm-cpi"
                )
                return
        else:
            self.stats.sequential += 1
            self.accounting.charge(
                cluster_id, OsActivity.PGFLT_SEQUENTIAL, params.pgflt_sequential_cost_ns
            )
        self._resolve(page, fault)

    def _cpi_then_resolve(
        self, cluster_id: int, page: int, fault: _InFlightFault
    ) -> Generator:
        """Process: run the fault-triggered CPI gather, then resolve."""
        assert self.cpi_handler is not None
        fp = self.fastpath
        if fp is not None and fp.on:
            fp.stats.fused_spawns += 1
            yield from self.cpi_handler(cluster_id)
        else:
            yield self.sim.process(self.cpi_handler(cluster_id), name="vm-cpi-gather")
        self.sim.call_at_tail(lambda _event: self._resolve(page, fault))

    def _resolve(self, page: int, fault: _InFlightFault) -> None:
        """Commit a serviced fault: admit the page, release the joiners."""
        self._admit(page)
        del self._in_flight[page]
        # Single trigger: the fault is deleted from _in_flight on the
        # previous line, so no later joiner can resolve it again.
        fault.resolved.succeed()  # cdr: noqa[CDR004]

    def _admit(self, page: int) -> None:
        """Make *page* resident, evicting FIFO under memory pressure."""
        self._resident[page] = None
        if (
            self.max_resident_pages is not None
            and len(self._resident) > self.max_resident_pages
        ):
            self._resident.popitem(last=False)
            self.stats.evictions += 1
            # Write-back of the evicted page, folded into the fault's
            # service path (the faulting CE waits it out).
            self.accounting.charge(
                0, OsActivity.PGFLT_SEQUENTIAL, self.params.page_writeback_cost_ns
            )

    def _want_cpi(self, fault: _InFlightFault) -> bool:
        """Deterministic thinning of fault-triggered CPI gathers."""
        fraction = self.params.pgflt_cpi_fraction
        if fraction <= 0.0:
            return False
        if fraction >= 1.0:
            return True
        period = max(1, round(1.0 / fraction))
        return self.stats.concurrent % period == 0

    def touch_many(self, cluster_id: int, pages: Iterable[int]) -> Generator:
        """Process: touch several pages in sequence.

        With the fast path armed, warm pages (already resident) are
        elided outright -- a warm sweep costs zero events -- and cold
        pages run the touch path inline instead of via per-page spawns.
        """
        fp = self.fastpath
        if fp is not None and fp.on:
            resident = self._resident
            stats = fp.stats
            for page in pages:
                if page in resident:
                    stats.warm_elisions += 1
                    continue
                stats.fused_spawns += 1
                yield from self.touch(cluster_id, page)
            return
        for page in pages:
            yield self.sim.process(self.touch(cluster_id, page), name="vm-touch")

    def prefault(self, pages: Iterable[int]) -> None:
        """Mark pages resident without cost (e.g. program text at load)."""
        for page in pages:
            self._admit(page)

    def invalidate_resident(self, fraction: float) -> int:
        """Drop a fraction of the resident set (fault injection).

        Models a page-fault storm: the dropped pages must be re-faulted
        on next touch, so the storm's cost emerges through the normal
        fault path.  Victims are chosen deterministically (every k-th
        resident page, oldest first).  Returns the number dropped.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        pages = list(self._resident)
        if fraction >= 1.0:
            victims = pages
        else:
            step = max(1, int(round(1.0 / fraction)))
            victims = pages[::step]
        for page in victims:
            del self._resident[page]
        return len(victims)
