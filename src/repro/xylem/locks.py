"""Kernel locks and critical sections.

Xylem protects critical sections/resources with memory locks: *cluster*
locks live in private cluster memory (shared by the cluster's CEs and
IPs) and *global* locks in shared global memory (shared by all CEs).
Time spent waiting for these locks is the paper's kernel-lock *spin*
time, which the measurements show to be negligible (< 1 % of completion
time); in the model the spin time likewise *emerges* from actual lock
contention rather than being injected.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.sim import Resource, Simulator
from repro.xylem.accounting import TimeAccounting
from repro.xylem.categories import OsActivity

__all__ = ["KernelLock", "CriticalSections"]


class KernelLock:
    """A kernel memory lock with spin-time accounting."""

    def __init__(self, sim: Simulator, accounting: TimeAccounting, name: str) -> None:
        self.sim = sim
        self.accounting = accounting
        self.name = name
        self._resource = Resource(sim, capacity=1)
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def held(self) -> bool:
        """Whether the lock is currently held."""
        return self._resource.count > 0

    def critical_section(self, cluster_id: int, hold_ns: int) -> Generator:
        """Process: acquire, hold for *hold_ns*, release.

        Waiting time (if the lock is busy) is charged to the waiter's
        cluster as kernel-lock spin; the hold time itself is charged by
        the caller under the appropriate activity.
        """
        wait_start = self.sim.now
        contended = self._resource.count > 0
        request = self._resource.request()
        yield request
        spin_ns = self.sim.now - wait_start
        if spin_ns > 0:
            self.accounting.charge_kspin(cluster_id, spin_ns)
        self.acquisitions += 1
        if contended:
            self.contended_acquisitions += 1
        try:
            yield hold_ns
        finally:
            self._resource.release(request)


class CriticalSections:
    """The kernel's critical-section/resource locks.

    One cluster lock per cluster (protecting cluster resources: IP and
    single-cluster CE structures) plus one global lock (protecting
    resources shared by all CEs), as described in Section 5.
    """

    def __init__(
        self,
        sim: Simulator,
        accounting: TimeAccounting,
        n_clusters: int,
        fastpath=None,
    ) -> None:
        self.sim = sim
        self.accounting = accounting
        #: Shared :class:`repro.xylem.fastpath.XylemFastPath` engine
        #: (``None`` when constructed standalone: always exact).
        self.fastpath = fastpath
        self.cluster_locks = [
            KernelLock(sim, accounting, name=f"cluster-{i}") for i in range(n_clusters)
        ]
        self.global_lock = KernelLock(sim, accounting, name="global")
        #: Hold-time inflation factor (fault injection: a slow kernel
        #: path stretches every critical section, so kspin emerges from
        #: the longer holds rather than being charged directly).
        self.hold_factor = 1.0

    def set_hold_factor(self, factor: float) -> None:
        """Inflate (or restore, with 1.0) critical-section hold times."""
        if factor <= 0.0:
            raise ValueError(f"factor must be > 0, got {factor}")
        self.hold_factor = factor

    def _effective_hold_ns(self, hold_ns: int) -> int:
        if self.hold_factor == 1.0:
            return hold_ns
        return int(round(hold_ns * self.hold_factor))

    def access_cluster(self, cluster_id: int, hold_ns: int) -> Generator:
        """Process: one cluster critical-section access; charges SYSTEM."""
        hold = self._effective_hold_ns(hold_ns)
        fp = self.fastpath
        if fp is not None and fp.on:
            # Inlined critical section: same acquire/hold/release
            # delays, no spawn events.
            fp.stats.fused_spawns += 1
            yield from self.cluster_locks[cluster_id].critical_section(cluster_id, hold)
        else:
            yield self.sim.process(
                self.cluster_locks[cluster_id].critical_section(cluster_id, hold),
                name="crsect-clus",
            )
        self.accounting.charge(cluster_id, OsActivity.CRSECT_CLUSTER, hold)

    def access_global(self, cluster_id: int, hold_ns: int) -> Generator:
        """Process: one global critical-section access; charges SYSTEM."""
        hold = self._effective_hold_ns(hold_ns)
        fp = self.fastpath
        if fp is not None and fp.on:
            fp.stats.fused_spawns += 1
            yield from self.global_lock.critical_section(cluster_id, hold)
        else:
            yield self.sim.process(
                self.global_lock.critical_section(cluster_id, hold),
                name="crsect-glbl",
            )
        self.accounting.charge(cluster_id, OsActivity.CRSECT_GLOBAL, hold)
