"""Per-cluster time accounting (the model's "Q" measurement facility).

The paper obtains the Figure 3 breakdown with a software facility "Q"
that monitors the utilisation of each cluster, classifying time into
user, system, interrupt and kernel-lock spin time (Section 5), and the
Table 2 detail from the instrumented OS routines.  In the model, every
OS activity debits its cost here as it happens, so both views come from
the same ledger.
"""

from __future__ import annotations

from repro.hardware.config import CedarConfig
from repro.xylem.categories import OsActivity, TimeCategory, activity_category

__all__ = ["TimeAccounting"]


class TimeAccounting:
    """Ledger of OS time per cluster, by detailed activity.

    User time is not debited directly: following the paper's Q facility
    it is whatever part of the cluster's wall-clock time was *not*
    spent in system/interrupt/kspin work (user code, user-level spins
    and barrier waits all count as user time).
    """

    def __init__(self, config: CedarConfig) -> None:
        self.config = config
        self._activity_ns = [
            {activity: 0 for activity in OsActivity} for _ in range(config.n_clusters)
        ]
        self._kspin_ns = [0] * config.n_clusters
        self._activity_counts = [
            {activity: 0 for activity in OsActivity} for _ in range(config.n_clusters)
        ]

    # -- debits -----------------------------------------------------------

    def charge(self, cluster_id: int, activity: OsActivity, ns: int, events: int = 1) -> None:
        """Debit *ns* of OS time for *activity* on *cluster_id*."""
        if ns < 0:
            raise ValueError(f"cannot charge negative time {ns}")
        self._activity_ns[cluster_id][activity] += ns
        self._activity_counts[cluster_id][activity] += events

    def charge_kspin(self, cluster_id: int, ns: int) -> None:
        """Debit kernel-lock spin (waiting) time on *cluster_id*."""
        if ns < 0:
            raise ValueError(f"cannot charge negative time {ns}")
        self._kspin_ns[cluster_id] += ns

    # -- queries ------------------------------------------------------------

    def activity_ns(self, cluster_id: int, activity: OsActivity) -> int:
        """Total time of one activity on one cluster."""
        return self._activity_ns[cluster_id][activity]

    def activity_count(self, cluster_id: int, activity: OsActivity) -> int:
        """Number of occurrences of one activity on one cluster."""
        return self._activity_counts[cluster_id][activity]

    def activity_total_ns(self, activity: OsActivity) -> int:
        """Total time of one activity over all clusters."""
        return sum(ledger[activity] for ledger in self._activity_ns)

    def category_ns(self, cluster_id: int, category: TimeCategory) -> int:
        """Coarse-category total (SYSTEM / INTERRUPT / KSPIN) on a cluster.

        ``USER`` cannot be derived from the ledger alone; use
        :meth:`breakdown` with the cluster's wall-clock time.
        """
        if category is TimeCategory.USER:
            raise ValueError("user time is wall-clock minus OS time; use breakdown()")
        if category is TimeCategory.KSPIN:
            return self._kspin_ns[cluster_id]
        return sum(
            ns
            for activity, ns in self._activity_ns[cluster_id].items()
            if activity_category(activity) is category
        )

    def os_total_ns(self, cluster_id: int) -> int:
        """All OS time (system + interrupt + kspin) on a cluster."""
        return (
            self.category_ns(cluster_id, TimeCategory.SYSTEM)
            + self.category_ns(cluster_id, TimeCategory.INTERRUPT)
            + self.category_ns(cluster_id, TimeCategory.KSPIN)
        )

    def breakdown(self, cluster_id: int, wall_ns: int) -> dict[TimeCategory, int]:
        """Figure-3-style breakdown of *wall_ns* on one cluster."""
        system = self.category_ns(cluster_id, TimeCategory.SYSTEM)
        interrupt = self.category_ns(cluster_id, TimeCategory.INTERRUPT)
        kspin = self.category_ns(cluster_id, TimeCategory.KSPIN)
        user = wall_ns - system - interrupt - kspin
        if user < 0:
            raise ValueError(
                f"OS time ({system + interrupt + kspin}) exceeds wall time ({wall_ns}) "
                f"on cluster {cluster_id}"
            )
        return {
            TimeCategory.USER: user,
            TimeCategory.SYSTEM: system,
            TimeCategory.INTERRUPT: interrupt,
            TimeCategory.KSPIN: kspin,
        }

    def table2_ns(self) -> dict[OsActivity, int]:
        """Machine-wide per-activity totals (the Table 2 rows)."""
        return {activity: self.activity_total_ns(activity) for activity in OsActivity}
