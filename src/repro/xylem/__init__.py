"""Model of Xylem, the Cedar operating system.

Implements the OS mechanisms whose overheads the paper characterizes in
Section 5: gang-scheduled cluster execution with cross-processor
interrupts, context switching, demand paging with sequential and
concurrent page faults, cluster/global system calls, critical sections
protected by kernel locks (with emergent spin time), and asynchronous
system traps -- all feeding a per-cluster time-accounting ledger.
"""

from repro.xylem.accounting import TimeAccounting
from repro.xylem.categories import OsActivity, TimeCategory, activity_category
from repro.xylem.kernel import ClusterState, XylemKernel
from repro.xylem.locks import CriticalSections, KernelLock
from repro.xylem.params import XylemParams
from repro.xylem.scheduler import BackgroundWorkload
from repro.xylem.task import ClusterTask, TaskKind, XylemProcess, create_process
from repro.xylem.vm import FaultStats, VirtualMemory

__all__ = [
    "BackgroundWorkload",
    "ClusterState",
    "ClusterTask",
    "CriticalSections",
    "FaultStats",
    "KernelLock",
    "OsActivity",
    "TaskKind",
    "TimeAccounting",
    "TimeCategory",
    "VirtualMemory",
    "XylemKernel",
    "XylemParams",
    "XylemProcess",
    "activity_category",
    "create_process",
]
