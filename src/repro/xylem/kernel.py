"""The Xylem kernel model: daemons, CPIs, syscalls and gang execution.

Xylem is Cedar's Unix-derived operating system.  The pieces the paper's
measurements exercise, and which this model implements, are:

* **Gang-scheduled cluster execution** -- within a cluster all 8 CEs
  are gang scheduled; OS service that needs a single execution thread
  (context switches, some syscalls, concurrent page faults) gathers the
  CEs with a cross-processor interrupt (CPI), freezing user execution
  on that cluster for the service window.
* **Context switching** -- in a dedicated system, context switches
  happen when the application blocks for I/O or when the OS server
  performs bookkeeping (Section 5.1); modelled as a per-cluster daemon.
* **System calls** (cluster and global) and **asynchronous system
  traps**, each with their service cost and occasional CPI.
* **Time accounting** feeding the "Q"-style breakdown of Figure 3 and
  the Table 2 detail.

User CE processes run their compute through :meth:`XylemKernel.execute`
so that kernel freezes stretch user work, making the completion-time
breakdown self-consistent: cluster wall time = user + system +
interrupt + kspin.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Generator

from repro.hardware.config import CedarConfig
from repro.hpm.events import EventType
from repro.hpm.monitor import CedarHpm
from repro.sim import ArbitratedResource, Gate, SimulationError, Simulator
from repro.xylem.accounting import TimeAccounting
from repro.xylem.categories import OsActivity
from repro.xylem.fastpath import XylemFastPath
from repro.xylem.locks import CriticalSections
from repro.xylem.params import XylemParams
from repro.xylem.vm import VirtualMemory

__all__ = ["ClusterState", "XylemKernel"]

#: Arbitration keys for the per-cluster OS-service lock.  Each kind of
#: service section passes its own key so same-instant requests are
#: granted in a stable, named order rather than event-queue arrival
#: order (see :class:`repro.sim.ArbitratedResource`).  Only one section
#: of each kind can be pending per cluster (the daemons are singletons;
#: syscall/fault CPI gathers thin to well-spaced instants), so the keys
#: stay unique among simultaneous requesters.
_SERVICE_CTX_GATHER = 0
_SERVICE_CTX_SWITCH = 1
_SERVICE_SCHED_GATHER = 2
_SERVICE_SCHED_CRSECT = 3
_SERVICE_AST = 4
_SERVICE_CPI = 5


class ClusterState:
    """Per-cluster gang-execution state: runnable gate + freeze ledger."""

    def __init__(self, sim: Simulator, cluster_id: int) -> None:
        self.sim = sim
        self.cluster_id = cluster_id
        self.runnable = Gate(sim, open_=True)
        self._freeze_depth = 0
        self._frozen_since = 0
        self._frozen_cum_ns = 0

    @property
    def frozen(self) -> bool:
        """Whether the cluster is currently frozen for OS service."""
        return self._freeze_depth > 0

    def freeze(self) -> None:
        """Suspend user execution on this cluster (nestable)."""
        if self._freeze_depth == 0:
            self.runnable.close()
            self._frozen_since = self.sim.now
        self._freeze_depth += 1

    def unfreeze(self) -> None:
        """Resume user execution once every freezer has released."""
        if self._freeze_depth <= 0:
            raise ValueError("unfreeze() without matching freeze()")
        self._freeze_depth -= 1
        if self._freeze_depth == 0:
            self._frozen_cum_ns += self.sim.now - self._frozen_since
            self.runnable.open()

    def frozen_cum_ns(self) -> int:
        """Total frozen time so far (including a current freeze)."""
        total = self._frozen_cum_ns
        if self._freeze_depth > 0:
            total += self.sim.now - self._frozen_since
        return total


class XylemKernel:
    """The modelled operating system of one Cedar machine."""

    def __init__(
        self,
        sim: Simulator,
        config: CedarConfig,
        params: XylemParams | None = None,
        hpm: CedarHpm | None = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.params = params or XylemParams()
        self.hpm = hpm
        self.accounting = TimeAccounting(config)
        #: Analytic fast-path engine shared by the OS layer (kernel,
        #: critical sections, virtual memory): child services are
        #: inlined instead of spawned when armed.
        self.fastpath = XylemFastPath(sim)
        self.critical_sections = CriticalSections(
            sim, self.accounting, config.n_clusters, fastpath=self.fastpath
        )
        self.clusters = [ClusterState(sim, i) for i in range(config.n_clusters)]
        self.vm = VirtualMemory(
            sim,
            self.accounting,
            self.params,
            critical_sections=self.critical_sections,
            cpi_handler=self.cpi_gather,
            fastpath=self.fastpath,
        )
        # The jitter streams are part of the calibrated operating point
        # (EXPERIMENTS.md): swapping the RNG backend or the keying would
        # shift every Table 1-4 value.  Each daemon owns an independent
        # stream keyed by (seed, kind, cluster) -- see
        # :meth:`jitter_stream` -- so a draw depends only on the owning
        # daemon's own wakeup count, never on how concurrently-armed
        # daemons interleave.  A shared stream consumed in schedule
        # order would make every jitter value depend on same-timestamp
        # tie-break order (the hazard ``repro.analyze.race`` hunts).
        self._seed = self.params.seed
        self._daemons_started = False
        self._syscall_counter = 0
        # One OS-server thread per cluster: every service section that
        # freezes user work (CPI gathers, the context-switch body, the
        # sched daemon's critical-section visit, ASTs) serialises here.
        # Disjoint freeze windows make the accounting exact -- time
        # charged to a cluster's ledger equals the wall time its user
        # work is frozen, so :meth:`execute` repays OS overhead exactly
        # once -- and the arbitrated grant keeps same-instant service
        # requests tie-stable (see :data:`_SERVICE_CTX_GATHER` ff.).
        self._service_locks = [
            ArbitratedResource(sim, capacity=1) for _ in range(config.n_clusters)
        ]
        # CEs the OS has deconfigured (fault injection); the runtime
        # consults ce_available() when spreading / self-scheduling work.
        self._deconfigured_ces: set[int] = set()

    # -- CE configuration ---------------------------------------------------

    def deconfigure_ce(self, ce_id: int) -> None:
        """Remove one CE from the configuration (Xylem dropping a CE).

        The runtime's self-scheduling loops simply stop handing the CE
        iterations; already-running chunks finish.  Refuses to empty a
        cluster: Xylem cannot gang-schedule a cluster with no CEs.
        """
        if not 0 <= ce_id < self.config.n_processors:
            raise ValueError(f"ce_id {ce_id} out of range")
        per = self.config.ces_per_cluster
        cluster_id = ce_id // per
        cluster_ces = range(cluster_id * per, (cluster_id + 1) * per)
        survivors = [c for c in cluster_ces if c not in self._deconfigured_ces and c != ce_id]
        if not survivors:
            raise SimulationError(
                f"deconfiguring CE {ce_id} would leave cluster {cluster_id} "
                "with no configured CEs"
            )
        self._deconfigured_ces.add(ce_id)

    def reconfigure_ce(self, ce_id: int) -> None:
        """Return a previously deconfigured CE to service."""
        self._deconfigured_ces.discard(ce_id)

    def ce_available(self, ce_id: int) -> bool:
        """Whether *ce_id* is configured (available for new work)."""
        return ce_id not in self._deconfigured_ces

    def available_ces(self, cluster_id: int) -> list[int]:
        """Configured CE ids of one cluster, in id order."""
        per = self.config.ces_per_cluster
        return [
            c
            for c in range(cluster_id * per, (cluster_id + 1) * per)
            if c not in self._deconfigured_ces
        ]

    # -- instrumentation ----------------------------------------------------

    def _record(self, event_type: EventType, cluster_id: int) -> None:
        if self.hpm is not None:
            # OS events are recorded against the cluster's first CE.
            self.hpm.record(event_type, cluster_id * self.config.ces_per_cluster)

    def _run_child(self, gen: Generator, name: str) -> Generator:
        """Run a strictly-sequential OS child generator.

        When the fast path is armed the child generator is returned
        as-is for the caller's ``yield from`` -- the child is awaited
        immediately, so skipping the process spawn and its
        Initialize/termination events leaves every yielded delay -- and
        therefore every charge and freeze window -- at identical times,
        and returning the child directly (instead of delegating through
        a wrapper generator) keeps the resume chain one frame shorter.
        Spawned as a named process otherwise (exact event shape).  Call
        sites must ``yield from`` the return value immediately (the
        arming check happens here, at call time).
        """
        fp = self.fastpath
        if fp.on:
            fp.stats.fused_spawns += 1
            return gen
        fp.stats.exact_spawns += 1
        return self._spawn_child(gen, name)

    def _spawn_child(self, gen: Generator, name: str) -> Generator:
        """Exact-path child execution: a named process, full event shape."""
        result = yield self.sim.process(gen, name=name)
        return result

    # -- daemons -------------------------------------------------------------

    def start_daemons(self) -> None:
        """Launch the per-cluster OS-server daemons (idempotent)."""
        if self._daemons_started:
            return
        self._daemons_started = True
        for cluster_id in range(self.config.n_clusters):
            self.sim.process(self._ctx_daemon(cluster_id), name=f"ctx-daemon-{cluster_id}")
            self.sim.process(self._ast_daemon(cluster_id), name=f"ast-daemon-{cluster_id}")
            self.sim.process(self._sched_daemon(cluster_id), name=f"sched-daemon-{cluster_id}")

    def jitter_stream(self, kind: str, cluster_id: int) -> random.Random:
        """Independent jitter RNG for one ``(daemon kind, cluster)``.

        The stream is keyed -- not shared: its seed is a BLAKE2 digest
        of ``(XylemParams.seed, kind, cluster_id)``, so the n-th draw of
        one daemon is a pure function of its own wakeup count.  With a
        single sequential stream, the schedule order of *other* daemons
        would decide which draw each consumer receives, and a
        same-``(time, priority)`` tie-break permutation
        (``cedar-repro race``) would cascade into different intervals
        everywhere.
        """
        material = f"{self._seed}|{kind}|{cluster_id}".encode()
        digest = hashlib.blake2b(material, digest_size=8).digest()
        # Seeded from run parameters via the keyed digest above; the
        # stdlib Mersenne Twister is the calibrated backend.
        return random.Random(int.from_bytes(digest, "big"))  # cdr: noqa[CDR002]

    def _jittered(self, rng: random.Random, interval_ns: int) -> int:
        jitter = self.params.interval_jitter
        if jitter == 0.0:
            return interval_ns
        factor = 1.0 + rng.uniform(-jitter, jitter)
        return max(1, int(interval_ns * factor))

    def _ctx_daemon(self, cluster_id: int) -> Generator:
        """OS-server bookkeeping: periodic context switches + CPIs."""
        params = self.params
        rng = self.jitter_stream("ctx", cluster_id)
        while True:
            yield self._jittered(rng, params.ctx_interval_ns)
            yield from self._run_child(self.context_switch(cluster_id), "ctx")

    def _sched_daemon(self, cluster_id: int) -> Generator:
        """Explicit resource-scheduling requests.

        The paper lists resource scheduling among the CPI sources
        (Section 5.1); gang-scheduled helpers and the OS server trade
        cluster resources at a steady background rate, each request
        gathering a single execution thread and touching a cluster
        critical section (occasionally a global one).
        """
        params = self.params
        rng = self.jitter_stream("sched", cluster_id)
        count = 0
        while True:
            yield self._jittered(rng, params.sched_interval_ns)
            self._record(EventType.SCHED_ENTER, cluster_id)
            yield from self._run_child(
                self.cpi_gather(cluster_id, key=_SERVICE_SCHED_GATHER), "sched-cpi"
            )
            state = self.clusters[cluster_id]
            lock = self._service_locks[cluster_id]
            request = lock.request(key=_SERVICE_SCHED_CRSECT)
            yield request
            state.freeze()
            try:
                yield from self._run_child(
                    self.critical_sections.access_cluster(
                        cluster_id, params.crsect_cluster_cost_ns
                    ),
                    "sched-crsect",
                )
                count += 1
                if count % 8 == 0:
                    yield from self._run_child(
                        self.critical_sections.access_global(
                            cluster_id, params.crsect_global_cost_ns
                        ),
                        "sched-gcrsect",
                    )
            finally:
                state.unfreeze()
                lock.release(request)
            self._record(EventType.SCHED_EXIT, cluster_id)

    def _ast_daemon(self, cluster_id: int) -> Generator:
        """Asynchronous system traps: rare, cheap."""
        params = self.params
        rng = self.jitter_stream("ast", cluster_id)
        while True:
            yield self._jittered(rng, params.ast_interval_ns)
            self._record(EventType.AST_ENTER, cluster_id)
            state = self.clusters[cluster_id]
            lock = self._service_locks[cluster_id]
            request = lock.request(key=_SERVICE_AST)
            yield request
            state.freeze()
            try:
                yield params.ast_cost_ns
                self.accounting.charge(cluster_id, OsActivity.AST, params.ast_cost_ns)
            finally:
                state.unfreeze()
                lock.release(request)
            self._record(EventType.AST_EXIT, cluster_id)

    # -- OS services ------------------------------------------------------------

    def context_switch(self, cluster_id: int) -> Generator:
        """Process: one context switch on *cluster_id*.

        Gathers a single execution thread via CPI, then performs the
        switch (register saves/restores, bookkeeping, a couple of
        cluster critical-section accesses), freezing user work.
        """
        params = self.params
        self._record(EventType.CTX_SWITCH_ENTER, cluster_id)
        yield from self._run_child(
            self.cpi_gather(cluster_id, key=_SERVICE_CTX_GATHER), "ctx-cpi"
        )
        state = self.clusters[cluster_id]
        lock = self._service_locks[cluster_id]
        request = lock.request(key=_SERVICE_CTX_SWITCH)
        yield request
        state.freeze()
        try:
            yield params.ctx_cost_ns
            self.accounting.charge(cluster_id, OsActivity.CTX, params.ctx_cost_ns)
            for _ in range(params.crsect_per_ctx):
                yield from self._run_child(
                    self.critical_sections.access_cluster(
                        cluster_id, params.crsect_cluster_cost_ns
                    ),
                    "ctx-crsect",
                )
        finally:
            state.unfreeze()
            lock.release(request)
        self._record(EventType.CTX_SWITCH_EXIT, cluster_id)

    def cpi_gather(self, cluster_id: int, key: int = _SERVICE_CPI) -> Generator:
        """Process: gather a single CE execution thread on a cluster.

        Every CE saves/restores registers and does its accounting
        before synchronising over the intra-cluster bus (Section 5.1);
        the CEs do this in parallel, so the cluster is frozen for one
        per-CE service time plus the bus synchronisation window, and
        that wall time is what the accounting ledger records (the "Q"
        facility measures cluster time shares).
        """
        params = self.params
        state = self.clusters[cluster_id]
        lock = self._service_locks[cluster_id]
        request = lock.request(key=key)
        yield request
        self._record(EventType.INTERRUPT_ENTER, cluster_id)
        state.freeze()
        try:
            wall_ns = params.cpi_per_ce_cost_ns + params.cpi_sync_ns
            yield wall_ns
            self.accounting.charge(cluster_id, OsActivity.CPI, wall_ns)
        finally:
            state.unfreeze()
            self._record(EventType.INTERRUPT_EXIT, cluster_id)
            lock.release(request)

    def cluster_syscall(self, cluster_id: int) -> Generator:
        """Process: one cluster system call from user code."""
        params = self.params
        self._record(EventType.SYSCALL_ENTER, cluster_id)
        yield params.syscall_cluster_cost_ns
        self.accounting.charge(
            cluster_id, OsActivity.SYSCALL_CLUSTER, params.syscall_cluster_cost_ns
        )
        self._syscall_counter += 1
        if self._needs_syscall_cpi():
            yield from self._run_child(self.cpi_gather(cluster_id), "syscall-cpi")
        self._record(EventType.SYSCALL_EXIT, cluster_id)

    def _needs_syscall_cpi(self) -> bool:
        fraction = self.params.syscall_cpi_fraction
        if fraction <= 0.0:
            return False
        period = max(1, round(1.0 / fraction))
        return self._syscall_counter % period == 0

    def global_syscall(self, cluster_id: int) -> Generator:
        """Process: one global system call (task create/start/stop...).

        Global syscalls access global critical sections.
        """
        params = self.params
        self._record(EventType.SYSCALL_ENTER, cluster_id)
        yield params.syscall_global_cost_ns
        self.accounting.charge(
            cluster_id, OsActivity.SYSCALL_GLOBAL, params.syscall_global_cost_ns
        )
        yield from self._run_child(
            self.critical_sections.access_global(cluster_id, params.crsect_global_cost_ns),
            "gsc-crsect",
        )
        self._record(EventType.SYSCALL_EXIT, cluster_id)

    # -- gang execution -----------------------------------------------------------

    def execute(self, cluster_id: int, work_ns: int) -> Generator:
        """Process: run *work_ns* of user computation on a cluster CE.

        The work is stretched by any time the cluster spends frozen for
        OS service while it runs, so OS overhead shows up in wall-clock
        completion time exactly once.  Returns the elapsed wall time.
        """
        if work_ns < 0:
            raise ValueError(f"work_ns must be >= 0, got {work_ns}")
        state = self.clusters[cluster_id]
        start = self.sim.now
        padded = 0
        frozen_before = state.frozen_cum_ns()
        if state.frozen:
            yield state.runnable.wait()
            frozen_before = state.frozen_cum_ns()
        yield work_ns
        while True:
            stolen = state.frozen_cum_ns() - frozen_before
            if stolen <= padded:
                break
            extra = stolen - padded
            padded = stolen
            yield extra
        return self.sim.now - start
