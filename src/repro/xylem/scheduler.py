"""Multiprogrammed scheduling: the setting the paper deliberately avoids.

The paper's measurements are made "in a dedicated, single user setting
with only the target application and the OS executing on the system"
(Section 3).  Xylem itself is a multitasking OS, so a natural question
is what the overheads look like when the machine is shared.  This
module models a competing Xylem process: on each cluster the competitor
periodically preempts the application for a time slice (with real
context-switch and CPI costs through the kernel), and -- because
Xylem's clusters schedule independently -- the slices on different
clusters drift apart, which *amplifies* barrier waits beyond the raw
CPU share taken (see ``examples/multiprogramming_study.py``).
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.xylem.kernel import XylemKernel

__all__ = ["BackgroundWorkload"]


class BackgroundWorkload:
    """A competing process time-sharing the clusters with the target.

    Parameters
    ----------
    kernel:
        The Xylem kernel of the machine under test.
    share:
        Fraction of each cluster's time the competitor receives.
    quantum_ns:
        Length of one competitor time slice.
    coscheduled:
        If true, every cluster is preempted at the same instants (gang
        scheduling across the whole machine); if false (Xylem's actual
        behaviour) clusters schedule independently and drift.
    seed:
        Seed for the per-cluster phase offsets in independent mode.
    """

    def __init__(
        self,
        kernel: XylemKernel,
        share: float = 0.25,
        quantum_ns: int = 20_000_000,
        coscheduled: bool = False,
        seed: int = 7,
    ) -> None:
        if not 0.0 < share < 1.0:
            raise ValueError(f"share must be in (0, 1), got {share}")
        if quantum_ns <= 0:
            raise ValueError(f"quantum_ns must be positive, got {quantum_ns}")
        self.kernel = kernel
        self.share = share
        self.quantum_ns = quantum_ns
        self.coscheduled = coscheduled
        self._rng = np.random.default_rng(seed)
        self._started = False
        #: Total competitor time granted, per cluster (ns).
        self.granted_ns = [0] * kernel.config.n_clusters

    @property
    def period_ns(self) -> int:
        """Full scheduling period: one competitor slice plus the
        application's share."""
        return int(round(self.quantum_ns / self.share))

    def start(self) -> None:
        """Begin preempting (idempotent)."""
        if self._started:
            return
        self._started = True
        n_clusters = self.kernel.config.n_clusters
        # Independent mode draws each cluster's phase within its own
        # period/n_clusters stratum: still seed-driven, but clusters are
        # guaranteed pairwise-distinct phases (the drift this mode models).
        stratum_ns = max(1, self.period_ns // n_clusters)
        for cluster_id in range(n_clusters):
            if self.coscheduled:
                offset = 0
            else:
                offset = cluster_id * stratum_ns + int(
                    self._rng.integers(stratum_ns)
                )
            self.kernel.sim.process(
                self._slice_loop(cluster_id, offset),
                name=f"bg-load-{cluster_id}",
            )

    def _slice_loop(self, cluster_id: int, offset_ns: int) -> Generator:
        sim = self.kernel.sim
        state = self.kernel.clusters[cluster_id]
        gap_ns = self.period_ns - self.quantum_ns
        if offset_ns > 0:
            yield offset_ns
        while True:
            yield gap_ns
            # Switch the application out (ctx + CPI through the kernel,
            # charged to the OS ledger like any other switch) ...
            yield sim.process(self.kernel.context_switch(cluster_id), name="bg-ctx")
            # ... run the competitor for its slice (the application's
            # gang is frozen on this cluster) ...
            state.freeze()
            try:
                yield self.quantum_ns
                self.granted_ns[cluster_id] += self.quantum_ns
            finally:
                state.unfreeze()
            # ... and switch the application back in.
            yield sim.process(self.kernel.context_switch(cluster_id), name="bg-ctx")
