"""Time-accounting categories used throughout the OS model.

Two granularities, matching the paper's two OS views:

* :class:`TimeCategory` -- the coarse breakdown of cluster time
  measured by the "Q" facility (Figure 3): user, system, interrupt and
  kernel-lock spin time.
* :class:`OsActivity` -- the detailed OS activities of Table 2:
  cross-processor interrupts, context switching, concurrent and
  sequential page faults, cluster and global critical sections,
  cluster and global system calls, and asynchronous system traps.
"""

from __future__ import annotations

import enum

__all__ = ["TimeCategory", "OsActivity", "activity_category"]


class TimeCategory(enum.Enum):
    """Coarse per-cluster time breakdown (Section 5, Figure 3)."""

    #: Application code, including user-level spins and barrier waits.
    USER = "user"
    #: General system work: syscalls, context switches, faults, critical
    #: sections.
    SYSTEM = "system"
    #: Software and cross-processor interrupt servicing.
    INTERRUPT = "interrupt"
    #: Kernel lock spin: waiting for shared-memory or cluster-memory locks.
    KSPIN = "kspin"


class OsActivity(enum.Enum):
    """Detailed OS overhead categories (Table 2)."""

    #: Servicing cross-processor interrupts.
    CPI = "cpi"
    #: Context switching.
    CTX = "ctx"
    #: Concurrent page faults (>= 2 CEs fault the same new page).
    PGFLT_CONCURRENT = "pg flt (c)"
    #: Sequential page faults.
    PGFLT_SEQUENTIAL = "pg flt (s)"
    #: Cluster critical sections / resources.
    CRSECT_CLUSTER = "Cr Sect (clus)"
    #: Global critical sections / resources.
    CRSECT_GLOBAL = "Cr Sect (glbl)"
    #: Cluster system calls.
    SYSCALL_CLUSTER = "clus syscall"
    #: Global system calls.
    SYSCALL_GLOBAL = "glbl syscall"
    #: Asynchronous system traps.
    AST = "ast"


#: Which coarse category each detailed activity contributes to.  The
#: paper counts CPI servicing as interrupt time and everything else as
#: system time; kernel-lock spin is accounted separately.
_ACTIVITY_CATEGORY = {
    OsActivity.CPI: TimeCategory.INTERRUPT,
    OsActivity.CTX: TimeCategory.SYSTEM,
    OsActivity.PGFLT_CONCURRENT: TimeCategory.SYSTEM,
    OsActivity.PGFLT_SEQUENTIAL: TimeCategory.SYSTEM,
    OsActivity.CRSECT_CLUSTER: TimeCategory.SYSTEM,
    OsActivity.CRSECT_GLOBAL: TimeCategory.SYSTEM,
    OsActivity.SYSCALL_CLUSTER: TimeCategory.SYSTEM,
    OsActivity.SYSCALL_GLOBAL: TimeCategory.SYSTEM,
    OsActivity.AST: TimeCategory.SYSTEM,
}


def activity_category(activity: OsActivity) -> TimeCategory:
    """Coarse :class:`TimeCategory` the *activity* is accounted under."""
    return _ACTIVITY_CATEGORY[activity]
