"""Service-time and rate parameters of the Xylem OS model.

The *mechanisms* (who triggers what, and what each event does) are
implemented in :mod:`repro.xylem.kernel`; this module holds the
per-event service times and daemon rates.  Defaults are calibrated so
that the modelled 4-cluster Cedar lands in the neighbourhood of the
paper's Table 2 (see ``tests/core/test_calibration.py`` and
EXPERIMENTS.md); they are deliberately exposed so users can explore
other operating points.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["XylemParams"]


@dataclass(frozen=True)
class XylemParams:
    """Tunable costs and rates of the OS model (times in nanoseconds)."""

    # -- context switching (bookkeeping in a dedicated system) ----------
    #: Mean interval between OS-server bookkeeping context switches on a
    #: cluster.  The paper attributes ctx to I/O blocking and OS-server
    #: bookkeeping; in a dedicated setting this is a background rate.
    ctx_interval_ns: int = 350_000_000
    #: Register save/restore plus switch bookkeeping per context switch.
    ctx_cost_ns: int = 1_500_000

    # -- resource scheduling ---------------------------------------------
    #: Mean interval between explicit resource-scheduling requests on a
    #: cluster (each gathers the CEs with a CPI, Section 5.1).
    sched_interval_ns: int = 30_000_000

    # -- cross-processor interrupts -------------------------------------
    #: Save/restore + accounting performed by *each* CE when a CPI
    #: gathers a single execution thread (Section 5.1 explains why this
    #: is large despite the fast intra-cluster bus).
    cpi_per_ce_cost_ns: int = 180_000
    #: Bus-level synchronisation window to gather the CEs.
    cpi_sync_ns: int = 30_000

    # -- page faults ------------------------------------------------------
    #: Service time of a sequential (single-CE) page fault.
    pgflt_sequential_cost_ns: int = 900_000
    #: Service time charged to the CE that services a concurrent page
    #: fault; concurrent faults are more expensive than sequential ones.
    pgflt_concurrent_cost_ns: int = 1_300_000
    #: Trap + wait bookkeeping charged to each *additional* CE that
    #: joins an in-flight fault (it traps, finds the fault in progress,
    #: and waits).
    pgflt_join_cost_ns: int = 250_000
    #: Joiners beyond this count are charged only a light trap.
    pgflt_join_charge_cap: int = 3
    #: Light trap + re-check cost for late fault joiners.
    pgflt_trap_light_ns: int = 40_000
    #: Fraction of concurrent faults that require a CPI gather.
    pgflt_cpi_fraction: float = 0.6
    #: Write-back cost when a dirty page is evicted under memory
    #: pressure (only reachable with a bounded resident set).
    page_writeback_cost_ns: int = 400_000

    # -- critical sections -------------------------------------------------
    #: Time inside a cluster critical section (cluster-memory lock held).
    crsect_cluster_cost_ns: int = 140_000
    #: Time inside a global critical section (global-memory lock held).
    crsect_global_cost_ns: int = 220_000
    #: Cluster critical sections accessed per page fault.
    crsect_per_fault: int = 2
    #: Cluster critical sections accessed per context switch.
    crsect_per_ctx: int = 2

    # -- system calls -------------------------------------------------------
    #: Service time of a cluster system call.
    syscall_cluster_cost_ns: int = 350_000
    #: Service time of a global system call.
    syscall_global_cost_ns: int = 1_200_000
    #: Fraction of cluster syscalls that trigger a CPI gather.
    syscall_cpi_fraction: float = 0.10

    # -- asynchronous system traps -----------------------------------------
    #: Mean interval between ASTs on a cluster.
    ast_interval_ns: int = 2_000_000_000
    #: Service time of one AST.
    ast_cost_ns: int = 90_000

    # -- misc ---------------------------------------------------------------
    #: RNG seed for the jittered daemon intervals.
    seed: int = 1994
    #: Relative jitter applied to daemon intervals (0 = deterministic).
    interval_jitter: float = 0.25

    def __post_init__(self) -> None:
        positive = (
            "ctx_interval_ns",
            "ctx_cost_ns",
            "sched_interval_ns",
            "cpi_per_ce_cost_ns",
            "cpi_sync_ns",
            "pgflt_sequential_cost_ns",
            "pgflt_concurrent_cost_ns",
            "pgflt_join_cost_ns",
            "pgflt_trap_light_ns",
            "page_writeback_cost_ns",
            "crsect_cluster_cost_ns",
            "crsect_global_cost_ns",
            "syscall_cluster_cost_ns",
            "syscall_global_cost_ns",
            "ast_interval_ns",
            "ast_cost_ns",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("pgflt_cpi_fraction", "syscall_cpi_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= self.interval_jitter < 1.0:
            raise ValueError(f"interval_jitter must be in [0, 1), got {self.interval_jitter}")
