"""Xylem processes and cluster tasks.

The primary structure Xylem adds to Unix is the *Xylem process*, made
up of one or more *cluster tasks* which can share portions of their
address space (Section 2).  The Cedar Fortran runtime creates one
helper task on each cluster other than the master cluster; within a
cluster, all 8 CEs are gang scheduled.
"""

from __future__ import annotations

import enum
from collections.abc import Generator

from repro.hardware.config import CedarConfig
from repro.sim import Simulator

__all__ = ["TaskKind", "ClusterTask", "XylemProcess", "create_process"]


class TaskKind(enum.Enum):
    """Role of a cluster task within its Xylem process."""

    #: The task the program started on (runs serial code and loops).
    MAIN = "main"
    #: A helper task created by the runtime on another cluster.
    HELPER = "helper"


class ClusterTask:
    """One gang-scheduled task bound to a cluster."""

    def __init__(self, task_id: int, cluster_id: int, kind: TaskKind) -> None:
        self.task_id = task_id
        self.cluster_id = cluster_id
        self.kind = kind

    @property
    def is_main(self) -> bool:
        """Whether this is the main task."""
        return self.kind is TaskKind.MAIN

    @property
    def name(self) -> str:
        """Paper-style task label: ``Main``, ``helper1``, ..."""
        if self.is_main:
            return "Main"
        return f"helper{self.task_id}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClusterTask {self.name} on cluster {self.cluster_id}>"


class XylemProcess:
    """A Xylem process: a main task plus helper tasks sharing memory."""

    def __init__(self, tasks: list[ClusterTask]) -> None:
        if not tasks or not tasks[0].is_main:
            raise ValueError("a Xylem process needs a main task first")
        self.tasks = tasks

    @property
    def main_task(self) -> ClusterTask:
        """The task the program started on (master cluster)."""
        return self.tasks[0]

    @property
    def helper_tasks(self) -> list[ClusterTask]:
        """Helper tasks, one per non-master cluster."""
        return self.tasks[1:]

    def task_on_cluster(self, cluster_id: int) -> ClusterTask:
        """The cluster task bound to *cluster_id*."""
        for task in self.tasks:
            if task.cluster_id == cluster_id:
                return task
        raise KeyError(f"no task on cluster {cluster_id}")


def create_process(sim: Simulator, config: CedarConfig, kernel) -> Generator:
    """Process: create the Xylem process for an application run.

    The main task starts on cluster 0; the runtime (with OS help)
    creates one helper task per additional cluster, each creation being
    a global system call.  Returns the :class:`XylemProcess`.
    """
    tasks = [ClusterTask(task_id=0, cluster_id=0, kind=TaskKind.MAIN)]
    for cluster_id in range(1, config.n_clusters):
        yield sim.process(kernel.global_syscall(0), name="task-create")
        tasks.append(ClusterTask(task_id=cluster_id, cluster_id=cluster_id, kind=TaskKind.HELPER))
    return XylemProcess(tasks)
