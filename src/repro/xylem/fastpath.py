"""Analytic fast paths for the Xylem OS model.

The OS layer's event cost is dominated by process bookkeeping, not by
time: daemons, CPI gathers, critical-section visits and page-fault
services are all *strictly sequential* children -- spawned with
``sim.process`` and awaited immediately.  Each such spawn costs an
``Initialize`` event, a termination event and a process object for a
child whose delays are the only part that matters.

When the fast path is armed, :meth:`XylemKernel._run_child` inlines
those children with ``yield from`` (no events, identical delays), and
:meth:`VirtualMemory.touch_many` elides already-resident pages without
even entering the touch path -- the warm part of a warm/cold page sweep
costs zero events instead of two per page.

Arming follows the discipline of :mod:`repro.hardware.fastpath` and
:mod:`repro.runtime.fastpath`: environment policy
(:mod:`repro.sim.policy`), sink-free, unperturbed, and not sticky-
disabled by a fault campaign (:meth:`repro.faults.FaultInjector.arm`
routes every layer exact before the run starts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Simulator
from repro.sim.policy import fastpath_policy

__all__ = ["XylemFastPath", "XylemFastPathStats"]


@dataclass
class XylemFastPathStats:
    """Fused/exact split of OS-layer child execution
    (``xylem.fastpath.*`` metrics namespace)."""

    #: OS service children inlined instead of spawned (CPI gathers,
    #: critical sections, context switches, page-fault services).
    fused_spawns: int = 0
    #: Already-resident pages skipped by the fused ``touch_many`` sweep.
    warm_elisions: int = 0
    #: Children spawned exactly because the engine was disarmed.
    exact_spawns: int = 0


class XylemFastPath:
    """Arming state + counters for the OS-layer fast paths."""

    __slots__ = ("sim", "stats", "enabled", "_armed")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.stats = XylemFastPathStats()
        #: Sticky switch; cleared only by :meth:`enable` (tests).
        self.enabled = True
        self._armed = fastpath_policy() and sim._sink is None and not sim.tie_perturbed

    @property
    def on(self) -> bool:
        """Whether children may be inlined right now."""
        return self.enabled and self._armed

    def disable(self) -> None:
        """Sticky disable (armed fault campaign): everything goes exact."""
        self.enabled = False

    def enable(self) -> None:
        """Re-enable after a campaign is torn down (tests)."""
        self.enabled = True
        sim = self.sim
        self._armed = fastpath_policy() and sim._sink is None and not sim.tie_perturbed

    @property
    def mode(self) -> str:
        """``"batched"`` or ``"exact"``: which path serves new children."""
        return "batched" if self.on else "exact"
