"""Dynamic schedule-order sanitizer.

The linter (:mod:`repro.analyze.rules`) catches the static hazards; this
module checks the property itself at runtime: two runs of the same
workload under the same seed must process *exactly* the same events in
*exactly* the same order.

:class:`DeterminismSink` plugs into the kernel's
:class:`~repro.obs.tracing.TraceSink` protocol and

* folds the processed-event order into a running BLAKE2 hash (the
  **schedule hash** -- equal hashes mean identical schedules);
* keeps a bounded prefix of the order so two runs can be diffed down to
  the first diverging event;
* records **tie-break ambiguities** reported by the kernel's audit hook:
  pairs of events at the same ``(time, priority)`` whose relative order
  is decided only by queue insertion order.  Insertion order *is*
  deterministic for a fixed program, but it is the schedule's most
  refactoring-fragile property -- any reordering of ``schedule()`` calls
  silently permutes such events -- so the sanitizer surfaces where the
  model relies on it.

:func:`sanitize_app` runs a workload ``runs`` times under one seed and
diffs the schedule hashes; ``cedar-repro sanitize`` wraps it.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.tracing import TraceSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apps.base import AppModel
    from repro.sim.core import Event, Process

__all__ = [
    "SCHEDULE_HASH_DOMAIN",
    "DeterminismSink",
    "ScheduleHashDomainError",
    "TieBreakRecord",
    "RunDigest",
    "SanitizeReport",
    "same_schedule",
    "sanitize_app",
    "split_schedule_hash",
]

#: Version tag carried by every schedule hash.  Bump this whenever an
#: intentional kernel or model change alters the processed-event stream
#: (v1 -> v2: the batched vector fast path replaced per-packet events
#: with per-stage milestones; v2 -> v3: the end-of-tick tail bands added
#: settle-point events -- burst observe slots, arbitration grants, VM
#: fault commits -- to every run's stream).  Hashes from different
#: domains are *incomparable*: :func:`same_schedule` raises instead of
#: reporting them as nondeterminism.
SCHEDULE_HASH_DOMAIN = "cedar-repro/schedule/v3"

#: Domain assumed for hashes recorded before versioning existed.
_LEGACY_DOMAIN = "cedar-repro/schedule/v1"


class ScheduleHashDomainError(ValueError):
    """Two schedule hashes from different domains were compared."""


def split_schedule_hash(value: str) -> tuple[str, str]:
    """Split a schedule hash into ``(domain, digest)``.

    Bare digests (recorded before the domain tag existed) belong to the
    implicit legacy domain ``cedar-repro/schedule/v1``.
    """
    domain, sep, digest = value.rpartition(":")
    if not sep:
        return _LEGACY_DOMAIN, value
    return domain, digest


def same_schedule(a: str, b: str) -> bool:
    """Whether two schedule hashes describe the same event order.

    Raises :class:`ScheduleHashDomainError` when the hashes come from
    different domains -- e.g. one side was recorded before a kernel
    change that intentionally altered the event stream.  That situation
    calls for re-recording the stored hash, and must not be mistaken
    for (or hidden among) genuine nondeterminism.
    """
    domain_a, digest_a = split_schedule_hash(a)
    domain_b, digest_b = split_schedule_hash(b)
    if domain_a != domain_b:
        raise ScheduleHashDomainError(
            f"schedule hashes are from different domains ({domain_a!r} vs "
            f"{domain_b!r}): the event stream definition changed between "
            "recordings.  Re-record the stored hash under "
            f"{SCHEDULE_HASH_DOMAIN!r}; this is not nondeterminism."
        )
    return digest_a == digest_b


@dataclass(frozen=True)
class TieBreakRecord:
    """Two events at the same ``(time, priority)`` ordered only by insertion."""

    t_ns: int
    priority: int
    first: str
    second: str

    def format(self) -> str:
        return (
            f"t={self.t_ns}ns prio={self.priority}: "
            f"{self.first} before {self.second} (insertion order only)"
        )


def _event_token(event: "Event", when: int) -> str:
    """Stable per-event label folded into the schedule hash.

    Uses only run-independent attributes (simulated time, event class,
    process name) -- never ``id()`` or anything address-derived.
    """
    name = getattr(event, "name", "")
    return f"{when}|{type(event).__name__}|{name}"


class DeterminismSink(TraceSink):
    """Kernel observer that fingerprints the processed-event order.

    Parameters
    ----------
    order_capacity:
        Number of order tokens retained verbatim for divergence
        diffing; the hash always covers the *full* schedule.
    ambiguity_capacity:
        Number of tie-break samples retained (the count is unbounded).
    """

    def __init__(
        self, order_capacity: int = 100_000, ambiguity_capacity: int = 256
    ) -> None:
        if order_capacity < 0 or ambiguity_capacity < 0:
            raise ValueError("capacities must be non-negative")
        self.order_capacity = order_capacity
        self.ambiguity_capacity = ambiguity_capacity
        self._hash = hashlib.blake2b(digest_size=16)
        self.events_processed = 0
        self.order: list[str] = []
        self.order_dropped = 0
        self.ambiguity_count = 0
        self.ambiguities: list[TieBreakRecord] = []

    # -- TraceSink protocol -------------------------------------------------

    def on_event_processed(self, event: "Event", when: int) -> None:
        token = _event_token(event, when)
        self._hash.update(token.encode())
        self._hash.update(b"\x00")
        self.events_processed += 1
        if len(self.order) < self.order_capacity:
            self.order.append(token)
        else:
            self.order_dropped += 1

    def on_tie_break(
        self, when: int, priority: int, first: "Event", second: "Event"
    ) -> None:
        self.ambiguity_count += 1
        if len(self.ambiguities) < self.ambiguity_capacity:
            self.ambiguities.append(
                TieBreakRecord(
                    t_ns=when,
                    priority=priority,
                    first=_event_token(first, when),
                    second=_event_token(second, when),
                )
            )

    def on_process_ended(self, process: "Process") -> None:
        # Fold process lifetimes in as well: a run that schedules the
        # same events but retires processes differently is not the same
        # schedule.
        self._hash.update(f"end|{process.sim.now}|{process.name}".encode())
        self._hash.update(b"\x00")

    # -- results ------------------------------------------------------------

    @property
    def schedule_hash(self) -> str:
        """Domain-tagged digest of the processed-event order so far.

        The ``cedar-repro/schedule/vN:`` prefix names the event-stream
        definition the digest was computed under; compare hashes with
        :func:`same_schedule` so cross-domain comparisons fail loudly.
        """
        return f"{SCHEDULE_HASH_DOMAIN}:{self._hash.hexdigest()}"

    def first_divergence(self, other: "DeterminismSink") -> int | None:
        """Index of the first differing order token versus *other*.

        ``None`` means no divergence within the retained prefixes (the
        schedule hashes are the authoritative comparison).
        """
        for index, (mine, theirs) in enumerate(zip(self.order, other.order)):
            if mine != theirs:
                return index
        if len(self.order) != len(other.order):
            return min(len(self.order), len(other.order))
        return None


@dataclass
class RunDigest:
    """What one sanitized run produced."""

    schedule_hash: str
    events_processed: int
    ct_ns: int
    ambiguity_count: int


@dataclass
class SanitizeReport:
    """Outcome of running one workload several times under one seed."""

    app: str
    n_processors: int
    scale: float
    seed: int
    digests: list[RunDigest] = field(default_factory=list)
    #: Index of the first diverging event between runs 0 and 1 within
    #: the retained order prefixes (``None`` if none observed).
    divergence_index: int | None = None
    #: Sample order tokens at the divergence, ``(run0, run1)``.
    divergence_tokens: tuple[str, str] | None = None
    #: Sample tie-break ambiguities from the first run.
    ambiguity_samples: list[TieBreakRecord] = field(default_factory=list)

    @property
    def deterministic(self) -> bool:
        """All runs produced the same schedule hash and completion time."""
        if not self.digests:
            return True
        head = self.digests[0]
        return all(
            d.schedule_hash == head.schedule_hash and d.ct_ns == head.ct_ns
            for d in self.digests[1:]
        )

    def format(self) -> str:
        lines = [
            f"sanitize {self.app} p={self.n_processors} scale={self.scale} "
            f"seed={self.seed}: {len(self.digests)} run(s)"
        ]
        for index, digest in enumerate(self.digests):
            lines.append(
                f"  run {index}: hash {digest.schedule_hash} "
                f"events {digest.events_processed} ct_ns {digest.ct_ns} "
                f"tie-breaks {digest.ambiguity_count}"
            )
        if self.deterministic:
            lines.append("  schedule hashes identical: deterministic")
        else:
            lines.append("  SCHEDULE HASHES DIFFER: run is not reproducible")
            if self.divergence_index is not None and self.divergence_tokens:
                run0, run1 = self.divergence_tokens
                lines.append(
                    f"  first divergence at event #{self.divergence_index}: "
                    f"run0 processed {run0!r}, run1 processed {run1!r}"
                )
        if self.ambiguity_samples:
            lines.append(
                f"  {self.digests[0].ambiguity_count} same-(time, priority) "
                "tie-break(s) resolved by insertion order; samples:"
            )
            for record in self.ambiguity_samples[:5]:
                lines.append(f"    {record.format()}")
        return "\n".join(lines)


def _resolve_builder(app: str) -> "Callable[..., AppModel]":
    """App-name -> model builder, accepting the synthetic workload too."""
    from repro.apps import PAPER_APPS, synthetic_app

    key = app.upper()
    if key in PAPER_APPS:
        return PAPER_APPS[key]
    if key in ("SYNTH", "SYNTHETIC"):
        return synthetic_app
    raise ValueError(
        f"unknown application {app!r}; pick from "
        f"{sorted(PAPER_APPS) + ['synthetic']}"
    )


def sanitize_app(
    app: str,
    n_processors: int,
    scale: float = 0.02,
    seed: int = 1994,
    runs: int = 2,
    order_capacity: int = 100_000,
) -> SanitizeReport:
    """Run *app* ``runs`` times under one seed and diff the schedules."""
    if runs < 2:
        raise ValueError(f"need at least 2 runs to compare, got {runs}")
    from repro.core.runner import run_application
    from repro.obs.instrument import Observability
    from repro.xylem.params import XylemParams

    builder = _resolve_builder(app)
    report = SanitizeReport(
        app=app.upper(), n_processors=n_processors, scale=scale, seed=seed
    )
    sinks: list[DeterminismSink] = []
    for _ in range(runs):
        sink = DeterminismSink(order_capacity=order_capacity)
        obs = Observability(extra_sinks=[sink])
        result = run_application(
            builder(),
            n_processors,
            scale=scale,
            os_params=XylemParams(seed=seed),
            obs=obs,
        )
        sinks.append(sink)
        report.digests.append(
            RunDigest(
                schedule_hash=sink.schedule_hash,
                events_processed=sink.events_processed,
                ct_ns=result.ct_ns,
                ambiguity_count=sink.ambiguity_count,
            )
        )
    report.ambiguity_samples = list(sinks[0].ambiguities[:16])
    if not report.deterministic:
        index = sinks[0].first_divergence(sinks[1])
        report.divergence_index = index
        if index is not None:
            token0 = sinks[0].order[index] if index < len(sinks[0].order) else "<end>"
            token1 = sinks[1].order[index] if index < len(sinks[1].order) else "<end>"
            report.divergence_tokens = (token0, token1)
    return report
