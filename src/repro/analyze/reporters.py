"""Render lint results for humans (text) and machines (JSON)."""

from __future__ import annotations

import json
from collections import Counter

from repro.analyze.engine import LintResult

__all__ = ["render_text", "render_json"]


def render_text(result: LintResult) -> str:
    """Conventional compiler-style report: one ``file:line:col`` per line."""
    lines = [finding.format() for finding in result.findings]
    by_code = Counter(finding.code for finding in result.findings)
    if result.findings:
        tally = ", ".join(f"{code} x{count}" for code, count in sorted(by_code.items()))
        lines.append(
            f"{len(result.findings)} finding(s) in {result.files_checked} "
            f"file(s): {tally}"
        )
    else:
        lines.append(f"0 findings in {result.files_checked} file(s)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON document: findings plus a per-code summary."""
    by_code = Counter(finding.code for finding in result.findings)
    document = {
        "files_checked": result.files_checked,
        "finding_count": len(result.findings),
        "by_code": dict(sorted(by_code.items())),
        "findings": [finding.as_dict() for finding in result.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)
