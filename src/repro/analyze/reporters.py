"""Render lint results for humans (text) and machines (JSON).

Beside the finding reports, :func:`render_suppression_stats` renders
the ``cedar-repro lint --stats`` audit: every ``# cdr: noqa`` directive
is accepted, documented debt, and this view keeps the ledger visible --
per rule, per file, with bare catch-all directives called out under
``ALL``.
"""

from __future__ import annotations

import json
from collections import Counter

from repro.analyze.engine import LintResult

__all__ = ["render_text", "render_json", "render_suppression_stats"]


def render_text(result: LintResult) -> str:
    """Conventional compiler-style report: one ``file:line:col`` per line."""
    lines = [finding.format() for finding in result.findings]
    by_code = Counter(finding.code for finding in result.findings)
    if result.findings:
        tally = ", ".join(f"{code} x{count}" for code, count in sorted(by_code.items()))
        lines.append(
            f"{len(result.findings)} finding(s) in {result.files_checked} "
            f"file(s): {tally}"
        )
    else:
        lines.append(f"0 findings in {result.files_checked} file(s)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON document: findings plus a per-code summary."""
    by_code = Counter(finding.code for finding in result.findings)
    document = {
        "files_checked": result.files_checked,
        "finding_count": len(result.findings),
        "by_code": dict(sorted(by_code.items())),
        "findings": [finding.as_dict() for finding in result.findings],
        "suppressions": result.suppression_stats(),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_suppression_stats(result: LintResult) -> str:
    """The ``--stats`` suppression audit, one ``file: CODE xN`` per file."""
    stats = result.suppression_stats()
    total = sum(sum(per_code.values()) for per_code in stats.values())
    by_code: Counter[str] = Counter()
    for per_code in stats.values():
        by_code.update(per_code)
    lines = []
    for path, per_code in stats.items():
        tally = ", ".join(f"{code} x{count}" for code, count in per_code.items())
        lines.append(f"{path}: {tally}")
    if total:
        tally = ", ".join(f"{code} x{count}" for code, count in sorted(by_code.items()))
        lines.append(
            f"{total} suppression(s) in {len(stats)} of "
            f"{result.files_checked} file(s): {tally}"
        )
    else:
        lines.append(f"0 suppressions in {result.files_checked} file(s)")
    return "\n".join(lines)
