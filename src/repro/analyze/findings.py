"""Finding data model and ``# cdr: noqa`` suppression parsing.

A :class:`Finding` is one determinism-invariant violation located at
``path:line:col`` and tagged with a stable ``CDR``-prefixed rule code.
Findings order naturally by location so reports are stable across runs
of the linter itself.

Suppressions
------------
Two comment forms silence findings:

* trailing, on the offending line::

      self._rng = random.Random(seed)  # cdr: noqa[CDR002]

* file-level, on a line of its own (conventionally near the top)::

      # cdr: noqa[CDR001]

A bare ``# cdr: noqa`` (no bracket) suppresses every rule for the line
or file.  Suppressions are matched against the physical line the AST
node starts on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Finding", "Suppressions", "parse_suppressions"]

#: Shape of a valid rule code.
CODE_RE = re.compile(r"^CDR\d{3}$")

_NOQA_RE = re.compile(r"#\s*cdr:\s*noqa(?:\[(?P<codes>[A-Za-z0-9,\s]+)\])?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render in the conventional ``file:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable form."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class Suppressions:
    """Parsed ``# cdr: noqa`` directives of one source file."""

    #: Codes suppressed for the whole file.
    file_codes: set[str] = field(default_factory=set)
    #: Every rule is suppressed for the whole file.
    file_all: bool = False
    #: Line number -> codes suppressed on that line.
    line_codes: dict[int, set[str]] = field(default_factory=dict)
    #: Lines on which every rule is suppressed.
    line_all: set[int] = field(default_factory=set)

    def suppressed(self, finding: Finding) -> bool:
        """Whether *finding* is silenced by a directive."""
        if self.file_all or finding.code in self.file_codes:
            return True
        if finding.line in self.line_all:
            return True
        return finding.code in self.line_codes.get(finding.line, set())

    def __bool__(self) -> bool:
        return bool(
            self.file_all or self.file_codes or self.line_all or self.line_codes
        )


def parse_suppressions(source: str) -> Suppressions:
    """Extract every ``# cdr: noqa`` directive from *source*.

    A directive on a line that holds only a comment applies file-wide;
    a trailing directive applies to its own line.
    """
    result = Suppressions()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        raw = match.group("codes")
        codes = (
            {c.strip().upper() for c in raw.split(",") if c.strip()}
            if raw is not None
            else None
        )
        file_level = text.lstrip().startswith("#")
        if codes is None:
            if file_level:
                result.file_all = True
            else:
                result.line_all.add(lineno)
        elif file_level:
            result.file_codes.update(codes)
        else:
            result.line_codes.setdefault(lineno, set()).update(codes)
    return result
