"""Finding data model and ``# cdr: noqa`` suppression parsing.

A :class:`Finding` is one determinism-invariant violation located at
``path:line:col`` and tagged with a stable ``CDR``-prefixed rule code.
Findings order naturally by location so reports are stable across runs
of the linter itself.

Suppressions
------------
Two comment forms silence findings:

* trailing, on the offending line::

      self._rng = random.Random(seed)  # cdr: noqa[CDR002]

* file-level, on a line of its own (conventionally near the top)::

      # cdr: noqa[CDR001]

A bare ``# cdr: noqa`` (no bracket) suppresses every rule for the line
or file.  Suppressions are matched against the physical line the AST
node starts on.

Malformed directives -- an unclosed bracket (``# cdr: noqa[CDR001``),
an empty code list (``# cdr: noqa[]``) or a code that is not
``CDR``-shaped (``# cdr: noqa[BOGUS]``) -- suppress **nothing**: the
author believed a rule was silenced when it was not (or, worse under
the pre-audit behaviour, silenced *every* rule).  They are recorded in
:attr:`Suppressions.malformed` and surfaced by the engine as
un-suppressible ``CDR000`` findings.

Every well-formed directive is also kept verbatim in
:attr:`Suppressions.records`, the raw material for the
``cedar-repro lint --stats`` suppression audit.

Directives are recognised only inside genuine comment tokens: a
docstring or string literal that merely *mentions* the syntax (such as
this one) neither suppresses nor counts.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Finding", "SuppressionRecord", "Suppressions", "parse_suppressions"]

#: Shape of a valid rule code.
CODE_RE = re.compile(r"^CDR\d{3}$")

#: Anchored at the start of the comment: a comment that merely
#: mentions the directive mid-sentence is prose, not a suppression.
_NOQA_RE = re.compile(r"^#+:?\s*cdr:\s*noqa")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render in the conventional ``file:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable form."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass(frozen=True)
class SuppressionRecord:
    """One well-formed ``# cdr: noqa`` directive, kept for auditing."""

    lineno: int
    #: Codes the directive names; empty means *every* rule.
    codes: tuple[str, ...]
    #: Whether the directive applies file-wide (comment-only line).
    file_level: bool


@dataclass
class Suppressions:
    """Parsed ``# cdr: noqa`` directives of one source file."""

    #: Codes suppressed for the whole file.
    file_codes: set[str] = field(default_factory=set)
    #: Every rule is suppressed for the whole file.
    file_all: bool = False
    #: Line number -> codes suppressed on that line.
    line_codes: dict[int, set[str]] = field(default_factory=dict)
    #: Lines on which every rule is suppressed.
    line_all: set[int] = field(default_factory=set)
    #: Every well-formed directive, in source order (the audit surface).
    records: list[SuppressionRecord] = field(default_factory=list)
    #: ``(lineno, reason)`` for directives that could not be parsed;
    #: these suppress nothing.
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def suppressed(self, finding: Finding) -> bool:
        """Whether *finding* is silenced by a directive."""
        if self.file_all or finding.code in self.file_codes:
            return True
        if finding.line in self.line_all:
            return True
        return finding.code in self.line_codes.get(finding.line, set())

    def __bool__(self) -> bool:
        return bool(
            self.file_all or self.file_codes or self.line_all or self.line_codes
        )


def _iter_comments(source: str) -> list[tuple[int, str, bool]]:
    """Every comment token as ``(lineno, text, is_whole_line)``.

    Tokenizing (rather than scanning raw lines) keeps string literals
    and docstrings out: only real comments can carry directives.
    Tokenizer failures end the scan at the error point -- the engine
    only parses suppressions for files that already compiled, so this
    is a belt-and-braces fallback, not an expected path.
    """
    comments: list[tuple[int, str, bool]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                lineno, col = token.start
                whole_line = not token.line[:col].strip()
                comments.append((lineno, token.string, whole_line))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def parse_suppressions(source: str) -> Suppressions:
    """Extract every ``# cdr: noqa`` directive from *source*.

    A directive in a comment that is alone on its line applies
    file-wide; a trailing directive applies to its own line.  Malformed
    directives (unclosed bracket, empty or invalid code list) are
    collected in :attr:`Suppressions.malformed` and suppress nothing.
    """
    result = Suppressions()
    for lineno, text, file_level in _iter_comments(source):
        match = _NOQA_RE.match(text)
        if match is None:
            continue
        rest = text[match.end() :].lstrip()
        if not rest.startswith("["):
            result.records.append(SuppressionRecord(lineno, (), file_level))
            if file_level:
                result.file_all = True
            else:
                result.line_all.add(lineno)
            continue
        closing = rest.find("]")
        if closing == -1:
            result.malformed.append(
                (lineno, "unclosed '[' in '# cdr: noqa[...]' directive")
            )
            continue
        codes = tuple(
            sorted({c.strip().upper() for c in rest[1:closing].split(",") if c.strip()})
        )
        if not codes:
            result.malformed.append(
                (lineno, "empty code list in '# cdr: noqa[...]' directive")
            )
            continue
        invalid = [code for code in codes if not CODE_RE.match(code)]
        if invalid:
            result.malformed.append(
                (
                    lineno,
                    f"invalid rule code(s) {', '.join(invalid)} in "
                    f"'# cdr: noqa[...]' directive",
                )
            )
            continue
        result.records.append(SuppressionRecord(lineno, codes, file_level))
        if file_level:
            result.file_codes.update(codes)
        else:
            result.line_codes.setdefault(lineno, set()).update(codes)
    return result
