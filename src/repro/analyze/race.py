"""Concurrency-hazard analysis: CDR100-series race rules + sanitizer.

Discrete-event "races" are not data races -- every callback runs to
completion atomically -- but they are just as real: whenever two events
land at the same ``(time, priority)``, their relative order is decided
only by event-queue insertion order (the eid tie-break).  Model code
whose *results* depend on that order is order-dependent: refactoring,
batching, or an unrelated extra event can silently change the published
tables.  This module attacks the problem from both ends:

* **Statically** -- the CDR100-series lint rules below extend the
  :mod:`repro.analyze.rules` catalogue with shared-state hazard
  patterns: stale read-modify-write across a ``yield`` (CDR101),
  event-list manipulation outside the kernel (CDR102), iteration over
  unordered containers (CDR103), and mutation of a foreign component's
  private state from a process generator without an owning acquisition
  (CDR104).

* **Dynamically** -- :func:`race_app` runs an application once with the
  kernel's natural insertion-order tie-break and then K more times
  under :meth:`~repro.sim.Simulator.perturb_tie_breaks` seeds that
  permute same-``(time, priority)`` order.  A hazard-free model must
  produce *byte-identical* breakdowns and tables for every seed; any
  fingerprint divergence is a confirmed order-dependence hazard,
  reported together with the first event at which the perturbed
  schedule parted from the baseline
  (:class:`~repro.analyze.sanitize.DeterminismSink`).

:func:`plant_order_hazard` builds a deliberately order-dependent
fault-injection hook -- the self-test proving the detector detects.
"""

from __future__ import annotations

import ast
import hashlib
import json
from collections.abc import Callable, Generator, Iterator, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analyze.findings import Finding
from repro.analyze.rules import (
    ModuleContext,
    Rule,
    import_map,
    register,
    resolve_name,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.apps.base import AppModel
    from repro.core.runner import PreRunHook, RunResult
    from repro.hardware.config import CedarConfig
    from repro.hardware.machine import CedarMachine
    from repro.runtime.library import CedarFortranRuntime
    from repro.sim import Simulator
    from repro.xylem.kernel import XylemKernel

__all__ = [
    "CrossYieldStaleWriteRule",
    "KernelInternalsRule",
    "UnorderedIterationRule",
    "ForeignStateMutationRule",
    "ResultFingerprint",
    "SeedDivergence",
    "RaceReport",
    "fingerprint_result",
    "race_app",
    "race_model",
    "plant_order_hazard",
]


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------

#: ``yield <x>.METHOD(...)`` / ``with <x>.METHOD(...)`` shapes that count
#: as taking ownership of shared state for the rest of the function:
#: :class:`~repro.sim.Resource` / :class:`~repro.sim.ArbitratedResource`
#: requests, :class:`~repro.sim.Gate` waits, :class:`~repro.sim.Store`
#: hand-offs.
_ACQUIRE_METHODS = frozenset({"request", "acquire", "wait", "get", "put"})

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Simulator internals that only :mod:`repro.sim` may touch.
_KERNEL_INTERNALS = frozenset({"_queue", "_eid_next", "_tail_seq"})

#: ``heapq`` functions that mutate a heap in place.
_HEAP_MUTATORS = frozenset(
    {
        "heapq.heappush",
        "heapq.heappop",
        "heapq.heapreplace",
        "heapq.heappushpop",
        "heapq.heapify",
    }
)


def _attr_path(node: ast.expr) -> str | None:
    """Dotted path of an attribute chain rooted at a plain name.

    ``self.load._active`` -> ``"self.load._active"``; chains broken by
    calls or subscripts return ``None`` (their identity is dynamic).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _attr_paths_read(expr: ast.expr) -> set[str]:
    """All dotted attribute paths loaded anywhere inside *expr*."""
    paths: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            path = _attr_path(node)
            if path is not None:
                paths.add(path)
    return paths


def _names_read(expr: ast.expr) -> set[str]:
    """All plain names loaded anywhere inside *expr*."""
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _is_acquisition(expr: ast.expr) -> bool:
    """Whether *expr* is an ownership-taking call (``lock.request()``...)."""
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    return isinstance(func, ast.Attribute) and func.attr in _ACQUIRE_METHODS


def _generators(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Every synchronous generator function in *tree* (any nesting)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and _function_has_yield(node):
            yield node


def _function_has_yield(fn: ast.FunctionDef) -> bool:
    """Whether *fn* itself yields (ignoring nested function scopes)."""
    for node in _ordered_body(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _ordered_body(fn: ast.AST) -> list[ast.AST]:
    """Source-ordered nodes of one function scope, nested defs excluded."""
    order: list[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            order.append(child)
            visit(child)

    visit(fn)
    return order


# ---------------------------------------------------------------------------
# CDR101 -- stale read-modify-write across a yield
# ---------------------------------------------------------------------------


@register
class CrossYieldStaleWriteRule(Rule):
    """CDR101: a value read before a ``yield`` written back after it.

    The classic simulated race::

        count = self.tracker.active      # read
        yield self.machine.burst_ns      # other processes run here
        self.tracker.active = count + 1  # stale write-back

    Between the read and the write, any number of other processes may
    have mutated the state; the final value then depends on same-tick
    event order.  The rule flags a write to an attribute path whose
    right-hand side derives from a local snapshot of the *same* path
    taken before an intervening ``yield``, unless the function acquired
    an owning ``Resource`` / ``Gate`` / ``Store`` first (``request`` /
    ``acquire`` / ``wait`` / ``get`` / ``put`` on the path).

    Single-statement augmented assignments (``self.n += 1``) are *not*
    flagged: a callback runs to completion atomically, so an in-place
    read-modify-write with no yield inside cannot interleave.
    """

    code = "CDR101"
    summary = "stale cross-yield write to shared state"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in _generators(ctx.tree):
            yield from self._check_function(ctx, fn)

    def _check_function(
        self, ctx: ModuleContext, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        yields_seen = 0
        guarded = False
        # local name -> (attr paths its value was read from, yields seen
        # at snapshot time)
        snapshots: dict[str, tuple[set[str], int]] = {}
        for node in _ordered_body(fn):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                yields_seen += 1
                if isinstance(node, ast.Yield) and node.value is not None:
                    if _is_acquisition(node.value):
                        guarded = True
                continue
            if isinstance(node, ast.With):
                if any(_is_acquisition(item.context_expr) for item in node.items):
                    guarded = True
                continue
            if not isinstance(node, ast.Assign):
                continue
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                # Local snapshot: remember which shared paths it holds.
                snapshots[node.targets[0].id] = (
                    _attr_paths_read(node.value),
                    yields_seen,
                )
                continue
            for target in node.targets:
                if not isinstance(target, ast.Attribute):
                    continue
                path = _attr_path(target)
                if path is None or guarded:
                    continue
                for name in _names_read(node.value):
                    snap = snapshots.get(name)
                    if snap is None:
                        continue
                    paths, at_yields = snap
                    if path in paths and at_yields < yields_seen:
                        yield ctx.finding(
                            target,
                            self.code,
                            f"write to {path!r} derives from {name!r}, a "
                            f"snapshot of the same state taken before a "
                            f"yield: other processes may have mutated it "
                            f"in between, making the result depend on "
                            f"same-tick event order. Re-read the state "
                            f"after resuming, or hold an owning "
                            f"Resource/Gate across the section.",
                        )
                        break


# ---------------------------------------------------------------------------
# CDR102 -- event-list manipulation outside the kernel
# ---------------------------------------------------------------------------


@register
class KernelInternalsRule(Rule):
    """CDR102: event-heap / kernel-internal access outside ``repro/sim``.

    The simulator's event list is a heap of ``(key, eid, event)``
    entries whose invariants (tie-break bands, perturbed-eid mode,
    head-slot parking) only :mod:`repro.sim.core` maintains.  Pushing
    or popping it directly -- or touching ``_queue`` / ``_eid_next`` /
    ``_tail_seq`` -- from model code bypasses those invariants and the
    tie-break audit hooks.  Flags ``heapq`` mutator calls and kernel
    internal attributes in any module outside
    ``LintConfig.kernel_modules``.
    """

    code = "CDR102"
    summary = "event-list manipulation outside the kernel"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_any(ctx.config.kernel_modules):
            return
        imports = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                origin = resolve_name(node.func, imports)
                if origin in _HEAP_MUTATORS:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"direct heap manipulation via {origin!r}: the "
                        f"event list's tie-break and banding invariants "
                        f"live in repro/sim/core.py. Schedule through "
                        f"Simulator.schedule/timeout/schedule_at_tail "
                        f"instead.",
                    )
            elif isinstance(node, ast.Attribute) and node.attr in _KERNEL_INTERNALS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"access to kernel internal {node.attr!r} outside "
                    f"repro/sim/: use the Simulator's public scheduling "
                    f"API so eid banding and perturbation stay intact.",
                )


# ---------------------------------------------------------------------------
# CDR103 -- iteration over unordered containers
# ---------------------------------------------------------------------------

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_OPERATIONS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)


@register
class UnorderedIterationRule(Rule):
    """CDR103: iterating a ``set`` where order can escape.

    Python ``set`` iteration order depends on insertion history and
    hash seeding, not on element values.  When the loop body schedules
    events, grants resources, or appends to an ordered structure, that
    arbitrary order leaks into scheduling decisions and the schedule is
    no longer a function of the model.  Flags ``for`` loops and
    comprehensions whose iterable is a set literal, a
    ``set()`` / ``frozenset()`` call, a set-operation result
    (``.union(...)`` etc.), or a local assigned from one -- and
    order-sensitive no-arg ``.pop()`` on such locals.  Iterate
    ``sorted(...)`` instead.
    """

    code = "CDR103"
    summary = "iteration over an unordered set"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for scope in self._scopes(ctx.tree):
            yield from self._check_scope(ctx, scope)

    def _scopes(self, tree: ast.Module) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _check_scope(self, ctx: ModuleContext, scope: ast.AST) -> Iterator[Finding]:
        set_locals: set[str] = set()
        # _ordered_body excludes nested function scopes, which _scopes
        # yields separately -- so module and function level get the same
        # recursive, source-ordered treatment.
        for node in _ordered_body(scope):
            if isinstance(node, ast.Assign):
                if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                    name = node.targets[0].id
                    if self._is_set_expr(node.value, set_locals):
                        set_locals.add(name)
                    else:
                        set_locals.discard(name)
            elif isinstance(node, ast.For):
                if self._is_set_expr(node.iter, set_locals):
                    yield self._finding(ctx, node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for comp in node.generators:
                    if self._is_set_expr(comp.iter, set_locals):
                        yield self._finding(ctx, comp.iter)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "pop"
                    and not node.args
                    and not node.keywords
                    and isinstance(func.value, ast.Name)
                    and func.value.id in set_locals
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"set.pop() on {func.value.id!r} removes an "
                        f"arbitrary element; pick deterministically, e.g. "
                        f"min(...) then discard.",
                    )

    def _is_set_expr(self, expr: ast.expr, set_locals: set[str]) -> bool:
        if isinstance(expr, ast.Set):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in set_locals
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_OPERATIONS:
                return True
        return False

    def _finding(self, ctx: ModuleContext, node: ast.AST) -> Finding:
        return ctx.finding(
            node,
            self.code,
            "iteration over a set: the order is arbitrary and can leak "
            "into scheduling decisions or published tables. Iterate "
            "sorted(...) (or an explicit ordered container) instead.",
        )


# ---------------------------------------------------------------------------
# CDR104 -- foreign private-state mutation from a process generator
# ---------------------------------------------------------------------------


@register
class ForeignStateMutationRule(Rule):
    """CDR104: a process mutating another component's private state.

    Bank queues, load ledgers, gate wait-lists and scheduler run queues
    are shared model state owned by their component; a process
    generator reaching into ``other._attr`` and mutating it competes
    with every same-tick process doing the same, with insertion order
    deciding who wins.  Flags writes (assignment, augmented assignment,
    ``del``, subscript stores) and in-place mutator calls
    (``.append`` / ``.update`` / ...) on attribute paths that (a) are
    rooted at a name other than ``self``/``cls`` and (b) traverse an
    underscore-private segment -- unless the function first acquired an
    owning ``Resource`` / ``Gate`` / ``Store``.  Mutate shared state
    through its owner's methods (which can serialize or tail-commit),
    or hold the owning lock.
    """

    code = "CDR104"
    summary = "unguarded mutation of foreign private state"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for fn in _generators(ctx.tree):
            yield from self._check_function(ctx, fn)

    def _check_function(
        self, ctx: ModuleContext, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        guarded = False
        for node in _ordered_body(fn):
            if isinstance(node, ast.Yield) and node.value is not None:
                if _is_acquisition(node.value):
                    guarded = True
            elif isinstance(node, ast.With):
                if any(_is_acquisition(item.context_expr) for item in node.items):
                    guarded = True
            if guarded:
                continue
            target = self._mutated_path(node)
            if target is not None:
                path, site = target
                yield ctx.finding(
                    site,
                    self.code,
                    f"process generator mutates foreign private state "
                    f"{path!r} without an owning acquisition: same-tick "
                    f"processes race on it, with event-queue insertion "
                    f"order deciding the outcome. Go through the owning "
                    f"component's API or hold its Resource/Gate.",
                )

    def _mutated_path(self, node: ast.AST) -> tuple[str, ast.AST] | None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                found = self._foreign_private_target(target)
                if found is not None:
                    return found
        elif isinstance(node, (ast.AugAssign, ast.Delete)):
            targets = node.targets if isinstance(node, ast.Delete) else [node.target]
            for target in targets:
                found = self._foreign_private_target(target)
                if found is not None:
                    return found
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
                path = _attr_path(func.value)
                if path is not None and self._is_foreign_private(path):
                    return path, node
        return None

    def _foreign_private_target(self, target: ast.expr) -> tuple[str, ast.AST] | None:
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if not isinstance(node, ast.Attribute):
            return None
        path = _attr_path(node)
        if path is not None and self._is_foreign_private(path):
            return path, target
        return None

    def _is_foreign_private(self, path: str) -> bool:
        root, _, rest = path.partition(".")
        if root in ("self", "cls") or not rest:
            return False
        return any(
            part.startswith("_") and not part.startswith("__")
            for part in rest.split(".")
        )


# ---------------------------------------------------------------------------
# Result fingerprints
# ---------------------------------------------------------------------------


def _flatten(value: object, prefix: str, out: dict[str, object]) -> None:
    if isinstance(value, dict):
        for key, item in value.items():
            _flatten(item, f"{prefix}.{key}" if prefix else str(key), out)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _flatten(item, f"{prefix}[{index}]", out)
    else:
        out[prefix] = value


@dataclass(frozen=True)
class ResultFingerprint:
    """Canonical byte-level identity of a run's published numbers.

    Covers everything the reproduction reports: completion time, the
    Figure-3 per-cluster breakdown, the Table-2 per-activity times and
    occurrence counts, the fault statistics and the analytic memory
    ledger.  Two runs with equal :attr:`digest` publish byte-identical
    breakdowns and tables.
    """

    payload: str
    digest: str

    def diff(self, other: "ResultFingerprint", limit: int = 8) -> list[str]:
        """Human-readable per-key differences against *other*."""
        mine: dict[str, object] = {}
        theirs: dict[str, object] = {}
        _flatten(json.loads(self.payload), "", mine)
        _flatten(json.loads(other.payload), "", theirs)
        lines = []
        for key in sorted(mine.keys() | theirs.keys()):
            a = mine.get(key)
            b = theirs.get(key)
            if a != b:
                lines.append(f"{key}: {a} != {b}")
                if len(lines) >= limit:
                    lines.append("...")
                    break
        return lines


def fingerprint_result(result: "RunResult") -> ResultFingerprint:
    """Fingerprint every table the run publishes (see the class doc)."""
    from repro.xylem.categories import OsActivity

    accounting = result.accounting
    n_clusters = result.config.n_clusters
    faults = result.fault_stats
    ledger = result.machine.mem_ledger
    payload: dict[str, object] = {
        "ct_ns": result.ct_ns,
        "breakdown": {
            str(cluster): {
                category.name: ns
                for category, ns in accounting.breakdown(
                    cluster, result.ct_ns
                ).items()
            }
            for cluster in range(n_clusters)
        },
        "table2_ns": {
            activity.name: ns for activity, ns in accounting.table2_ns().items()
        },
        "activity_counts": {
            activity.name: sum(
                accounting.activity_count(cluster, activity)
                for cluster in range(n_clusters)
            )
            for activity in OsActivity
        },
        "faults": {
            "sequential": faults.sequential,
            "concurrent": faults.concurrent,
            "joined": faults.joined,
            "evictions": faults.evictions,
        },
        "memory": {
            "busy_ns": list(ledger.busy_ns),
            "ideal_ns": list(ledger.ideal_ns),
            "bursts": list(ledger.bursts),
            "scalar_round_trips": ledger.scalar_round_trips,
            "scalar_round_trip_ns": ledger.scalar_round_trip_ns,
        },
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()
    return ResultFingerprint(payload=canonical, digest=digest)


# ---------------------------------------------------------------------------
# The tie-break perturbation sanitizer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeedDivergence:
    """One perturbation seed whose results diverged from the baseline."""

    seed: int
    #: ``key: baseline != perturbed`` lines from the fingerprint diff.
    mismatches: tuple[str, ...]
    #: Index of the first processed event at which the perturbed
    #: schedule departed from the baseline order (``None`` when the
    #: prefix window did not capture it).
    divergence_index: int | None
    baseline_token: str | None
    perturbed_token: str | None

    def format(self) -> str:
        lines = [f"seed {self.seed}: results diverged from baseline"]
        lines += [f"    {line}" for line in self.mismatches]
        if self.divergence_index is not None:
            lines.append(
                f"    schedules part at event #{self.divergence_index}: "
                f"baseline ran {self.baseline_token!r}, "
                f"perturbed ran {self.perturbed_token!r}"
            )
        return "\n".join(lines)


@dataclass
class RaceReport:
    """Outcome of one perturbation-sanitizer campaign on one app."""

    app: str
    n_processors: int
    scale: float
    seeds: tuple[int, ...]
    baseline: ResultFingerprint | None = None
    #: Tie-breaks observed during the baseline run -- how much
    #: same-instant ambiguity the perturbation actually exercises.
    tie_breaks: int = 0
    #: The hottest tie sites of the baseline run, ``(first, second,
    #: count)`` label pairs from the
    #: :class:`~repro.obs.hazard.TieBreakAuditSink`: where to look
    #: first when a divergence needs a culprit.
    hot_sites: list[tuple[str, str, int]] = field(default_factory=list)
    divergences: list[SeedDivergence] = field(default_factory=list)

    @property
    def hazard_free(self) -> bool:
        """All perturbed runs published byte-identical results."""
        return not self.divergences

    def format(self) -> str:
        verdict = "PASS" if self.hazard_free else "FAIL"
        lines = [
            f"race sanitizer: {self.app} P={self.n_processors} "
            f"scale={self.scale} seeds={list(self.seeds)} -> {verdict}",
            f"  baseline tie-breaks: {self.tie_breaks} "
            f"(same-(time, priority) insertion-order decisions exercised)",
        ]
        if self.hazard_free:
            lines.append(
                f"  {len(self.seeds)} perturbed schedule(s) produced "
                f"byte-identical breakdowns and tables"
            )
        else:
            for divergence in self.divergences:
                lines.append("  " + divergence.format().replace("\n", "\n  "))
        if self.hot_sites:
            lines.append("  hottest tie sites:")
            for first, second, count in self.hot_sites:
                lines.append(f"    {count:>8}  {first} <-> {second}")
        return "\n".join(lines)


def race_model(
    builder: "Callable[[], AppModel]",
    name: str,
    n_processors: int = 8,
    scale: float = 0.02,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    os_seed: int = 1994,
    order_capacity: int = 100_000,
    pre_run_hook: "PreRunHook | None" = None,
    config: "CedarConfig | None" = None,
) -> RaceReport:
    """Hunt order-dependence hazards in a model by perturbing tie-breaks.

    The general engine behind :func:`race_app`: *builder* is any
    zero-argument callable producing a fresh
    :class:`~repro.apps.base.AppModel` -- a hand-coded app builder or a
    compiled scenario's :meth:`~repro.scenario.compiler.CompiledScenario.
    builder` -- and *config* optionally overrides the machine topology
    (``None`` keeps the paper configuration for *n_processors*).

    Runs a baseline (natural insertion-order tie-break), then one run
    per entry of *seeds* with
    :meth:`~repro.sim.Simulator.perturb_tie_breaks` armed, and compares
    :func:`fingerprint_result` byte-for-byte.  The perturbed *schedule*
    legitimately differs -- the permutation is the whole point -- so
    schedule hashes are never asserted equal; they serve only to locate
    the first divergent event when the *results* differ.

    *pre_run_hook* is forwarded to every run; pass
    :func:`plant_order_hazard` to self-test the detector.
    """
    from repro.analyze.sanitize import DeterminismSink
    from repro.core.runner import run_application
    from repro.obs.hazard import TieBreakAuditSink
    from repro.obs.instrument import Observability
    from repro.xylem.params import XylemParams

    report = RaceReport(
        app=name,
        n_processors=n_processors,
        scale=scale,
        seeds=tuple(seeds),
    )
    audit = TieBreakAuditSink()

    def one_run(
        tie_break_seed: int | None,
    ) -> tuple[ResultFingerprint, DeterminismSink]:
        sink = DeterminismSink(order_capacity=order_capacity)
        extra: list = [sink]
        if tie_break_seed is None:
            # Audit only the baseline: that is the schedule whose
            # insertion-order decisions the perturbations second-guess.
            extra.append(audit)
        result = run_application(
            builder(),
            n_processors,
            scale=scale,
            config=config,
            os_params=XylemParams(seed=os_seed),
            obs=Observability(extra_sinks=extra),
            pre_run_hook=pre_run_hook,
            tie_break_seed=tie_break_seed,
        )
        return fingerprint_result(result), sink

    baseline, baseline_sink = one_run(None)
    report.baseline = baseline
    report.tie_breaks = baseline_sink.ambiguity_count
    report.hot_sites = audit.top_sites(5)
    for seed in report.seeds:
        perturbed, sink = one_run(seed)
        if perturbed.digest == baseline.digest:
            continue
        index = baseline_sink.first_divergence(sink)
        baseline_token = perturbed_token = None
        if index is not None:
            order_a = baseline_sink.order
            order_b = sink.order
            baseline_token = order_a[index] if index < len(order_a) else "<end>"
            perturbed_token = order_b[index] if index < len(order_b) else "<end>"
        report.divergences.append(
            SeedDivergence(
                seed=seed,
                mismatches=tuple(baseline.diff(perturbed)),
                divergence_index=index,
                baseline_token=baseline_token,
                perturbed_token=perturbed_token,
            )
        )
    return report


def race_app(
    app: str,
    n_processors: int = 8,
    scale: float = 0.02,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    os_seed: int = 1994,
    order_capacity: int = 100_000,
    pre_run_hook: "PreRunHook | None" = None,
) -> RaceReport:
    """Hunt order-dependence hazards in a *named* app (see
    :func:`race_model`).

    Resolves *app* through the builder registry (the five Perfect apps
    plus the synthetic workload) and runs the perturbation campaign on
    the stock paper configuration.
    """
    from repro.analyze.sanitize import _resolve_builder

    return race_model(
        _resolve_builder(app),
        name=app.upper(),
        n_processors=n_processors,
        scale=scale,
        seeds=seeds,
        os_seed=os_seed,
        order_capacity=order_capacity,
        pre_run_hook=pre_run_hook,
    )


# ---------------------------------------------------------------------------
# Planted hazard (detector self-test)
# ---------------------------------------------------------------------------


def plant_order_hazard(
    period_ns: int = 100_000, cost_ns: int = 5_000
) -> "PreRunHook":
    """A pre-run hook arming a deliberate order-dependence hazard.

    Every *period_ns* a daemon spawns two processes at the same instant
    that race to claim a shared cell; the OS charge then depends on
    which of the two the event queue happened to dequeue first.  Under
    the natural insertion-order tie-break the winner is always the
    first-spawned process; under tie-break perturbation the winner
    flips seed by seed, so the published tables diverge -- exactly the
    class of bug the sanitizer exists to catch.  Used by
    ``cedar-repro race --self-test`` and the CI self-test to prove the
    detector detects.
    """
    from repro.xylem.categories import OsActivity

    def hook(
        sim: "Simulator",
        machine: "CedarMachine",
        kernel: "XylemKernel",
        runtime: "CedarFortranRuntime",
    ) -> None:
        def racer(tag: str, claimed: list[str]) -> Generator:
            yield 1
            # First resumer this tick claims the cell; the charge then
            # depends on dequeue order -- the planted hazard.
            if not claimed:
                claimed.append(tag)
                charge = cost_ns if tag == "a" else 2 * cost_ns
                kernel.accounting.charge(0, OsActivity.AST, charge)

        def daemon() -> Generator:
            while True:
                yield period_ns
                claimed: list = []
                sim.process(racer("a", claimed), name="hazard-a")
                sim.process(racer("b", claimed), name="hazard-b")

        sim.process(daemon(), name="hazard-daemon")

    return hook
