"""Lint engine: file discovery, rule execution, suppression filtering.

:func:`lint_paths` is the programmatic entry point the ``cedar-repro
lint`` command wraps: it walks the given files/directories, parses each
Python file once, runs every registered rule over the AST and drops
findings silenced by ``# cdr: noqa`` directives (see
:mod:`repro.analyze.findings`).

Whitelists are part of :class:`LintConfig` rather than hard-coded in the
rules so tests (and future callers) can lint fixture trees with the
invariants fully enforced.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analyze.findings import (
    Finding,
    SuppressionRecord,
    Suppressions,
    parse_suppressions,
)
from repro.analyze.rules import ModuleContext, all_rules

__all__ = ["LintConfig", "LintResult", "lint_source", "lint_file", "lint_paths"]

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


@dataclass(frozen=True)
class LintConfig:
    """Whitelists and rule selection for one lint run.

    Paths are package-root-relative with POSIX separators; an entry
    ending in ``/`` whitelists a subtree, anything else a single file.
    """

    #: Modules allowed to read the host wall clock (CDR001): the kernel
    #: times callbacks for the profiler, and observability is precisely
    #: the place host timing belongs.
    wallclock_allow: tuple[str, ...] = ("repro/sim/core.py", "repro/obs/")
    #: Modules exempt from the RNG rule (CDR002).  Empty by default:
    #: every stochastic model input must thread a seed.
    rng_allow: tuple[str, ...] = ()
    #: The simulation kernel: the only place allowed to trigger events
    #: directly (CDR004) and to read the wall clock for profiling.
    kernel_modules: tuple[str, ...] = ("repro/sim/",)
    #: Restrict the run to these codes (``None`` = all registered).
    select: frozenset[str] | None = None


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Path -> well-formed ``# cdr: noqa`` directives found there (only
    #: files with at least one directive appear).  The raw material of
    #: the ``cedar-repro lint --stats`` suppression audit: suppressions
    #: are accepted debt, and debt should be countable.
    suppressions: dict[str, list[SuppressionRecord]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """``True`` when no findings survived suppression."""
        return not self.findings

    def suppression_stats(self) -> dict[str, dict[str, int]]:
        """Per-file, per-code counts of suppression directives.

        Bare ``# cdr: noqa`` directives (which silence every rule) are
        tallied under the pseudo-code ``ALL``; a directive naming
        several codes counts once per code.
        """
        stats: dict[str, dict[str, int]] = {}
        for path, records in self.suppressions.items():
            per_code: dict[str, int] = {}
            for record in records:
                for code in record.codes or ("ALL",):
                    per_code[code] = per_code.get(code, 0) + 1
            stats[path] = dict(sorted(per_code.items()))
        return dict(sorted(stats.items()))


def _relpath(path: Path) -> str:
    """Normalise *path* so whitelists match regardless of invocation dir.

    The portion starting at the ``repro`` package root is used when
    present (``/x/src/repro/sim/core.py`` -> ``repro/sim/core.py``);
    otherwise the path is returned as-is in POSIX form, which simply
    never matches the package whitelists (fixture trees get the full
    rule set).
    """
    parts = path.as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return path.as_posix()


def _analyse(
    source: str,
    path: str,
    cfg: LintConfig,
    relpath: str | None,
) -> tuple[list[Finding], Suppressions | None]:
    """Run every rule over *source*; returns (findings, suppressions).

    Suppressions are ``None`` when the file did not parse.  Malformed
    ``# cdr: noqa`` directives become ``CDR000`` findings that are
    deliberately *not* run through suppression filtering: a broken
    directive must not be able to silence its own diagnosis.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                    code="CDR000",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            None,
        )
    ctx = ModuleContext(
        path=path,
        relpath=relpath if relpath is not None else _relpath(Path(path)),
        tree=tree,
        config=cfg,
    )
    suppressions = parse_suppressions(source)
    findings = [
        finding
        for rule in all_rules(cfg.select)
        for finding in rule.check(ctx)
        if not suppressions.suppressed(finding)
    ]
    findings.extend(
        Finding(
            path=path,
            line=lineno,
            col=1,
            code="CDR000",
            message=f"{reason}: the directive suppresses nothing",
        )
        for lineno, reason in suppressions.malformed
    )
    findings.sort()
    return findings, suppressions


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig | None = None,
    relpath: str | None = None,
) -> list[Finding]:
    """Lint Python *source* text; returns surviving findings, sorted.

    A file that does not parse produces a single ``CDR000`` finding at
    the error location rather than crashing the run.
    """
    cfg = config if config is not None else LintConfig()
    findings, _ = _analyse(source, path, cfg, relpath)
    return findings


def lint_file(path: Path, config: LintConfig | None = None) -> list[Finding]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), config=config)


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.add(candidate)
        elif path.suffix == ".py":
            found.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(found)


def lint_paths(paths: list[Path], config: LintConfig | None = None) -> LintResult:
    """Lint every Python file under *paths*."""
    cfg = config if config is not None else LintConfig()
    result = LintResult()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings, suppressions = _analyse(source, str(file_path), cfg, None)
        result.findings.extend(findings)
        if suppressions is not None and suppressions.records:
            result.suppressions[str(file_path)] = list(suppressions.records)
        result.files_checked += 1
    result.findings.sort()
    return result
