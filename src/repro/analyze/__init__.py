"""Static and dynamic enforcement of the simulation's determinism invariants.

The reproduction's claim to validity is that contention *emerges* from
concurrent requests under a fixed seed, which requires every run to be
bit-for-bit deterministic.  This package enforces that property twice
over:

* **statically** -- an AST lint framework (:mod:`repro.analyze.rules`,
  :mod:`repro.analyze.engine`) with stable ``CDR``-coded rules banning
  the classic discrete-event-simulation hazards: wall-clock reads,
  global/unseeded RNG, float time, out-of-kernel event triggering and
  non-generator processes.  ``cedar-repro lint [paths]`` runs it.
* **dynamically** -- a schedule-order sanitizer
  (:mod:`repro.analyze.sanitize`) that hashes the processed-event order
  of a run and flags same-``(time, priority)`` tie-breaks.
  ``cedar-repro sanitize`` runs a workload twice under one seed and
  diffs the hashes.

The concurrency-hazard layer (:mod:`repro.analyze.race`) extends both
ends: the CDR100-series rules flag shared-state races in process
generators, and the tie-break perturbation sanitizer
(``cedar-repro race``) permutes same-instant event order under K seeds
and asserts byte-identical breakdowns and tables.

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from repro.analyze.engine import (
    LintConfig,
    LintResult,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analyze.findings import (
    Finding,
    SuppressionRecord,
    Suppressions,
    parse_suppressions,
)
from repro.analyze.race import (
    RaceReport,
    ResultFingerprint,
    SeedDivergence,
    fingerprint_result,
    plant_order_hazard,
    race_app,
    race_model,
)
from repro.analyze.reporters import (
    render_json,
    render_suppression_stats,
    render_text,
)
from repro.analyze.rules import RULE_REGISTRY, ModuleContext, Rule, all_rules
from repro.analyze.sanitize import (
    SCHEDULE_HASH_DOMAIN,
    DeterminismSink,
    RunDigest,
    SanitizeReport,
    ScheduleHashDomainError,
    TieBreakRecord,
    same_schedule,
    sanitize_app,
    split_schedule_hash,
)

__all__ = [
    "SCHEDULE_HASH_DOMAIN",
    "DeterminismSink",
    "ScheduleHashDomainError",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "RULE_REGISTRY",
    "RaceReport",
    "ResultFingerprint",
    "Rule",
    "RunDigest",
    "SanitizeReport",
    "SeedDivergence",
    "SuppressionRecord",
    "Suppressions",
    "TieBreakRecord",
    "all_rules",
    "fingerprint_result",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "plant_order_hazard",
    "race_app",
    "race_model",
    "render_json",
    "render_suppression_stats",
    "render_text",
    "same_schedule",
    "sanitize_app",
    "split_schedule_hash",
]
