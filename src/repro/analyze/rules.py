"""AST lint rules enforcing the simulation's reproducibility invariants.

The paper's methodology depends on contention *emerging* from the model
rather than being scripted, which is only trustworthy if every run is
bit-for-bit deterministic.  Each rule here bans one classic way a
discrete-event simulation silently loses that property:

=======  ==============================================================
code     invariant
=======  ==============================================================
CDR001   no host wall-clock reads in model code (kernel + obs excepted)
CDR002   no global / unseeded RNG: thread a seeded generator
CDR003   no float arithmetic feeding simulated timestamps
CDR004   no ``Event.succeed()/fail()`` / ``Simulator.schedule()``
         outside the kernel without a stated single-trigger invariant
CDR005   functions handed to ``sim.process()`` must be generators
=======  ==============================================================

Rules are registered in :data:`RULE_REGISTRY` keyed by code; the engine
instantiates each rule once per file and feeds it a
:class:`ModuleContext`.  See ``docs/static-analysis.md`` for the full
catalogue with examples and suppression guidance.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

from repro.analyze.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analyze.engine import LintConfig

__all__ = ["ModuleContext", "Rule", "RULE_REGISTRY", "register", "all_rules"]


@dataclass
class ModuleContext:
    """Everything a rule needs to know about the file under analysis."""

    #: Display path (as given on the command line).
    path: str
    #: Path normalised to start at the package root (``repro/...``) when
    #: possible, with POSIX separators; used for whitelist matching.
    relpath: str
    tree: ast.Module
    config: "LintConfig"

    def in_any(self, prefixes: tuple[str, ...]) -> bool:
        """Whether this module falls under one of *prefixes*.

        A prefix ending in ``/`` matches a directory subtree; any other
        prefix must match the relpath exactly.
        """
        for prefix in prefixes:
            if prefix.endswith("/"):
                if self.relpath.startswith(prefix):
                    return True
            elif self.relpath == prefix:
                return True
        return False

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """Build a :class:`Finding` anchored at *node*."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


class Rule:
    """Base class for one lint rule (stateless; one instance per file)."""

    code: ClassVar[str] = "CDR000"
    summary: ClassVar[str] = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``ctx.tree``."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for typing


#: Registry of every known rule, keyed by stable code.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding *cls* to :data:`RULE_REGISTRY`."""
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def all_rules(select: frozenset[str] | None = None) -> list[Rule]:
    """Instantiate the registered rules (optionally only *select*)."""
    codes = sorted(RULE_REGISTRY)
    if select is not None:
        unknown = select - set(codes)
        if unknown:
            raise ValueError(f"unknown rule codes: {sorted(unknown)}")
        codes = [c for c in codes if c in select]
    return [RULE_REGISTRY[code]() for code in codes]


# -- shared AST helpers ------------------------------------------------------


def import_map(tree: ast.Module) -> dict[str, str]:
    """Map each imported local name to its dotted origin.

    ``import numpy as np`` yields ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` yields
    ``{"pc": "time.perf_counter"}``.  Imports anywhere in the module
    (including inside functions) are collected.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                table[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def resolve_name(func: ast.expr, imports: dict[str, str]) -> str | None:
    """Resolve a call target to a dotted origin, following imports.

    Returns ``None`` when the target is not a plain name/attribute
    chain (e.g. a subscripted or computed callee).
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    parts[0] = imports.get(parts[0], parts[0])
    return ".".join(parts)


def _has_yield(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether *fn* itself contains a yield (ignoring nested functions)."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # a nested definition's yields are its own
        stack.extend(ast.iter_child_nodes(node))
    return False


def function_table(
    tree: ast.Module,
) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    """All function/method definitions in the module, by bare name.

    When a name is defined more than once the *last* definition wins;
    rules using this table are heuristic by design and err on the side
    of not flagging.
    """
    table: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            table[node.name] = node
    return table


# -- CDR001: wall-clock reads ------------------------------------------------

_WALLCLOCK_ORIGINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    """CDR001: host wall-clock reads make runs time-dependent."""

    code = "CDR001"
    summary = "wall-clock read in simulation model code"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_any(ctx.config.wallclock_allow):
            return
        imports = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_name(node.func, imports)
            if origin in _WALLCLOCK_ORIGINS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"wall-clock read `{origin}()` in model code: host time "
                    "varies run to run; route host timing through "
                    "repro.obs.hostclock or keep it inside the kernel/obs "
                    "whitelist",
                )


# -- CDR002: global / unseeded RNG -------------------------------------------

#: numpy.random attributes that construct the modern, explicitly seeded
#: Generator machinery (allowed); everything else on numpy.random is the
#: legacy process-global state (banned).
_NUMPY_RNG_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@register
class RngRule(Rule):
    """CDR002: stochastic behaviour must flow from one threaded seed."""

    code = "CDR002"
    summary = "global or unseeded random number generation"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_any(ctx.config.rng_allow):
            return
        imports = import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_name(node.func, imports)
            if origin is None:
                continue
            if origin in ("random.Random", "random.SystemRandom"):
                yield ctx.finding(
                    node,
                    self.code,
                    f"`{origin}` construction in model code: thread a seeded "
                    "numpy Generator (np.random.default_rng(seed)) from run "
                    "parameters, or suppress stating the seed-threading "
                    "invariant",
                )
            elif origin.startswith("random."):
                yield ctx.finding(
                    node,
                    self.code,
                    f"call to the process-global RNG `{origin}()`: its state "
                    "is shared across the whole process, so any import-order "
                    "or call-order change reshuffles every stream; thread a "
                    "seeded Generator instead",
                )
            elif origin.startswith("numpy.random."):
                attr = origin.rsplit(".", 1)[1]
                if attr not in _NUMPY_RNG_ALLOWED:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"legacy numpy global RNG `{origin}()`: use a seeded "
                        "np.random.default_rng(seed) Generator threaded from "
                        "run parameters",
                    )


# -- CDR003: float arithmetic on simulated timestamps ------------------------


def _float_hazard(node: ast.AST) -> ast.AST | None:
    """First float literal or true division reachable without crossing
    a call boundary (a called function is assumed to return a proper
    integer delay; ``int()``/``round()`` guards are calls too)."""
    if isinstance(node, ast.Call):
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return node
    for child in ast.iter_child_nodes(node):
        hit = _float_hazard(child)
        if hit is not None:
            return hit
    return None


@register
class FloatTimeRule(Rule):
    """CDR003: the simulated clock is integer nanoseconds, always."""

    code = "CDR003"
    summary = "float arithmetic feeding a simulated timestamp"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for arg in self._delay_args(node):
                hazard = _float_hazard(arg)
                if hazard is not None:
                    yield ctx.finding(
                        hazard,
                        self.code,
                        "float arithmetic in a scheduling delay: simulated "
                        "time is integer nanoseconds, and float rounding "
                        "makes event order platform-dependent; convert "
                        "explicitly with int(...) or round(...)",
                    )

    @staticmethod
    def _delay_args(call: ast.Call) -> list[ast.expr]:
        """The argument expressions of *call* that become delays."""
        func = call.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        args: list[ast.expr] = []
        if name == "timeout":
            if call.args:
                args.append(call.args[0])
        elif name == "Timeout":
            if len(call.args) >= 2:
                args.append(call.args[1])
        elif name == "schedule":
            if len(call.args) >= 3:
                args.append(call.args[2])
        else:
            return []
        for kw in call.keywords:
            if kw.arg == "delay":
                args.append(kw.value)
        return args


# -- CDR004: event triggering outside the kernel -----------------------------


@register
class KernelOnlyTriggerRule(Rule):
    """CDR004: direct event triggering belongs to the kernel."""

    code = "CDR004"
    summary = "event triggered/scheduled outside the simulation kernel"

    _METHODS = frozenset({"succeed", "fail", "schedule"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_any(ctx.config.kernel_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in self._METHODS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"`.{func.attr}()` outside the kernel: a double trigger "
                    "raises at runtime and a refactor can reorder the "
                    "schedule; prefer sim primitives (Gate, Resource, Store, "
                    "process results) or suppress stating the single-trigger "
                    "invariant",
                )


# -- CDR005: generator hygiene for sim.process -------------------------------


@register
class ProcessGeneratorRule(Rule):
    """CDR005: ``sim.process()`` needs a running generator."""

    code = "CDR005"
    summary = "non-generator handed to sim.process()"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        functions = function_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "process"):
                continue
            if not node.args:
                continue
            target = node.args[0]
            if isinstance(target, ast.Call):
                name = self._bare_name(target.func)
                fn = functions.get(name) if name else None
                if fn is not None and not _has_yield(fn):
                    yield ctx.finding(
                        target,
                        self.code,
                        f"`{name}()` passed to sim.process() contains no "
                        "yield: it is not a generator function, so the "
                        "process would fail at construction",
                    )
            elif isinstance(target, (ast.Name, ast.Attribute)):
                name = self._bare_name(target)
                if name and name in functions:
                    yield ctx.finding(
                        target,
                        self.code,
                        f"function `{name}` passed to sim.process() without "
                        "being called: pass the generator it returns "
                        f"(`{name}(...)`), not the function object",
                    )

    @staticmethod
    def _bare_name(node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            # ``self.worker`` / ``cls.worker`` style references.
            if node.value.id in ("self", "cls"):
                return node.attr
        return None
