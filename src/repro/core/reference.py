"""The paper's published numbers, for comparison and benchmarks.

Transcribed from Tables 1-4 and the Section 5-7 prose of Natarajan,
Sharma & Iyer, "Measurement-Based Characterization of Global Memory and
Network Contention, Operating System and Parallelization Overheads:
Case Study on a Shared-Memory Multiprocessor", ISCA 1994.
"""

from __future__ import annotations

__all__ = [
    "APPS",
    "CONFIGS",
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "NARRATIVE",
]

#: Applications in the paper's order.
APPS = ("FLO52", "ARC2D", "MDG", "OCEAN", "ADM")

#: Processor counts of the measured configurations.
CONFIGS = (1, 4, 8, 16, 32)

#: Table 1 -- completion time (s), speedup, average concurrency.
#: ``TABLE1[app][n_proc] = (ct_s, speedup, concurrency)``; the
#: 1-processor entries have speedup/concurrency of 1.0 by definition.
TABLE1 = {
    "FLO52": {
        1: (613.0, 1.0, 1.0),
        4: (214.0, 2.86, 3.49),
        8: (145.0, 4.23, 6.11),
        16: (96.0, 6.39, 9.66),
        32: (73.0, 8.40, 14.82),
    },
    "ARC2D": {
        1: (2139.0, 1.0, 1.0),
        4: (593.0, 3.61, 3.70),
        8: (342.0, 6.25, 6.82),
        16: (203.0, 10.54, 12.28),
        32: (142.0, 15.06, 20.56),
    },
    "MDG": {
        1: (4935.0, 1.0, 1.0),
        4: (1260.0, 3.89, 3.92),
        8: (663.0, 7.44, 7.60),
        16: (346.0, 14.26, 15.14),
        32: (202.0, 24.43, 28.82),
    },
    "OCEAN": {
        1: (2726.0, 1.0, 1.0),
        4: (711.0, 3.83, 3.86),
        8: (381.0, 7.16, 7.53),
        16: (230.0, 11.85, 12.98),
        32: (175.0, 15.58, 17.27),
    },
    "ADM": {
        1: (707.0, 1.0, 1.0),
        4: (208.0, 3.40, 3.46),
        8: (121.0, 5.84, 6.06),
        16: (83.0, 8.52, 9.42),
        32: (80.0, 8.84, 13.56),
    },
}

#: Table 2 -- detailed OS overheads on the 4-cluster Cedar:
#: ``TABLE2[app][activity] = (seconds, percent_of_ct)``.
TABLE2 = {
    "FLO52": {
        "cpi": (3.48, 4.70),
        "ctx": (1.68, 2.30),
        "pg flt (c)": (2.22, 3.04),
        "pg flt (s)": (1.64, 2.25),
        "Cr Sect (clus)": (1.17, 1.60),
        "Cr Sect (glbl)": (0.23, 0.33),
        "clus syscall": (0.26, 0.35),
        "glbl syscall": (0.04, 0.05),
        "ast": (0.03, 0.04),
    },
    "ARC2D": {
        "cpi": (5.62, 3.95),
        "ctx": (2.91, 2.04),
        "pg flt (c)": (3.73, 2.62),
        "pg flt (s)": (2.20, 1.54),
        "Cr Sect (clus)": (3.43, 2.77),
        "Cr Sect (glbl)": (1.18, 0.83),
        "clus syscall": (0.84, 0.59),
        "glbl syscall": (0.05, 0.04),
        "ast": (0.18, 0.13),
    },
    "MDG": {
        "cpi": (2.42, 1.18),
        "ctx": (3.72, 1.84),
        "pg flt (c)": (1.54, 0.76),
        "pg flt (s)": (0.48, 0.23),
        "Cr Sect (clus)": (2.42, 1.18),
        "Cr Sect (glbl)": (0.80, 0.39),
        "clus syscall": (0.48, 0.28),
        "glbl syscall": (0.03, 0.01),
        "ast": (0.05, 0.02),
    },
}

#: Table 3 -- average parallel-loop concurrency per task:
#: ``TABLE3[app][n_proc] = {task_name: value}``.
TABLE3 = {
    "FLO52": {
        4: {"Main": 3.88},
        8: {"Main": 7.28},
        16: {"Main": 7.01, "helper1": 5.93},
        32: {"Main": 6.85, "helper1": 6.51, "helper2": 6.34, "helper3": 6.25},
    },
    "ARC2D": {
        4: {"Main": 3.94},
        8: {"Main": 7.64},
        16: {"Main": 7.63, "helper1": 7.45},
        32: {"Main": 7.62, "helper1": 7.15, "helper2": 7.16, "helper3": 7.18},
    },
    "MDG": {
        4: {"Main": 3.96},
        8: {"Main": 7.79},
        16: {"Main": 7.88, "helper1": 7.84},
        32: {"Main": 7.98, "helper1": 7.89, "helper2": 7.92, "helper3": 7.95},
    },
    "OCEAN": {
        4: {"Main": 3.92},
        8: {"Main": 7.88},
        16: {"Main": 7.42, "helper1": 7.62},
        32: {"Main": 5.74, "helper1": 5.59, "helper2": 5.61, "helper3": 5.58},
    },
    "ADM": {
        4: {"Main": 3.96},
        8: {"Main": 7.93},
        16: {"Main": 7.55, "helper1": 7.45},
        32: {"Main": 5.89, "helper1": 5.94, "helper2": 5.91, "helper3": 5.83},
    },
}

#: Table 4 -- global memory and network contention overhead:
#: ``TABLE4[app][n_proc] = (tp_actual_s, tp_ideal_s, ov_cont_pct)``;
#: the 1-processor entries carry only tp_actual.
TABLE4 = {
    "FLO52": {
        1: (574.0, None, None),
        4: (185.0, 148.0, 17.0),
        8: (118.0, 79.0, 27.0),
        16: (68.0, 45.0, 24.0),
        32: (37.0, 22.0, 21.0),
    },
    "ARC2D": {
        1: (2067.0, None, None),
        4: (545.0, 525.0, 3.4),
        8: (300.0, 270.0, 8.8),
        16: (160.0, 139.0, 10.3),
        32: (94.0, 74.0, 14.1),
    },
    "MDG": {
        1: (4800.0, None, None),
        4: (1228.0, 1212.0, 1.3),
        8: (643.0, 616.0, 4.1),
        16: (330.0, 305.0, 7.2),
        32: (178.0, 151.0, 13.4),
    },
    "OCEAN": {
        1: (2647.0, None, None),
        4: (701.0, 675.0, 3.5),
        8: (360.0, 336.0, 6.3),
        16: (195.0, 177.0, 8.0),
        32: (133.0, 120.0, 7.4),
    },
    "ADM": {
        1: (663.0, None, None),
        4: (171.0, 167.0, 1.9),
        8: (89.0, 84.0, 4.1),
        16: (51.0, 46.0, 5.9),
        32: (43.0, 33.0, 12.5),
    },
}

#: Headline bands from the abstract and Sections 5-7 prose, used by the
#: narrative benchmark.
NARRATIVE = {
    # OS overhead as % of CT.
    "os_overhead_1proc_pct": (3.0, 4.0),
    "os_overhead_32proc_pct": (5.0, 21.0),
    # Parallelization overhead on the 4-cluster Cedar as % of CT.
    "par_overhead_main_32_pct": (10.0, 25.0),
    "par_overhead_helper_32_pct": (15.0, 44.0),
    # Barrier wait as % of CT.
    "barrier_wait_16_pct": (2.0, 7.0),
    "barrier_wait_32_pct": (7.0, 16.0),
    # Contention overhead on the 4-cluster Cedar as % of CT.
    "contention_32_pct": (7.0, 21.0),
    # Kernel lock spin as % of CT.
    "kspin_max_pct": (0.0, 1.0),
}
