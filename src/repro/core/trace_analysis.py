"""Reconstruction of activity intervals from cedarhpm event traces.

The paper's Sections 5-7 analyses all start from the off-loaded event
traces; this module turns the flat event list into paired intervals
(per processor, per kind) that the breakdown, concurrency and
contention modules consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.hpm.events import EventType, TraceEvent

__all__ = ["IntervalKind", "Interval", "extract_intervals", "intervals_of"]


class IntervalKind(enum.Enum):
    """Kinds of reconstructed activity intervals."""

    SERIAL = "serial"
    MC_LOOP = "mc_loop"
    SETUP = "setup"
    PICKUP = "pickup"
    ITERATION = "iteration"
    BARRIER = "barrier"
    HELPER_WAIT = "helper_wait"
    SYSCALL = "syscall"
    INTERRUPT = "interrupt"
    AST = "ast"
    CTX = "ctx"
    PROGRAM = "program"


#: (open event, close event) -> interval kind.
_PAIRS: dict[EventType, tuple[EventType, IntervalKind]] = {
    EventType.SERIAL_START: (EventType.SERIAL_END, IntervalKind.SERIAL),
    EventType.MC_LOOP_START: (EventType.MC_LOOP_END, IntervalKind.MC_LOOP),
    EventType.SETUP_ENTER: (EventType.SETUP_EXIT, IntervalKind.SETUP),
    EventType.PICKUP_ENTER: (EventType.PICKUP_EXIT, IntervalKind.PICKUP),
    EventType.ITER_START: (EventType.ITER_END, IntervalKind.ITERATION),
    EventType.BARRIER_ENTER: (EventType.BARRIER_EXIT, IntervalKind.BARRIER),
    EventType.WAIT_WORK_ENTER: (EventType.WAIT_WORK_EXIT, IntervalKind.HELPER_WAIT),
    EventType.SYSCALL_ENTER: (EventType.SYSCALL_EXIT, IntervalKind.SYSCALL),
    EventType.INTERRUPT_ENTER: (EventType.INTERRUPT_EXIT, IntervalKind.INTERRUPT),
    EventType.AST_ENTER: (EventType.AST_EXIT, IntervalKind.AST),
    EventType.CTX_SWITCH_ENTER: (EventType.CTX_SWITCH_EXIT, IntervalKind.CTX),
    EventType.PROGRAM_START: (EventType.PROGRAM_END, IntervalKind.PROGRAM),
}

_CLOSERS = {closer: opener for opener, (closer, _) in _PAIRS.items()}


@dataclass(frozen=True)
class Interval:
    """One reconstructed activity interval."""

    kind: IntervalKind
    processor_id: int
    task_id: int
    start_ns: int
    end_ns: int
    #: Payload of the opening event (loop seq/construct/label tuple
    #: for runtime events).
    payload: object = None

    @property
    def duration_ns(self) -> int:
        """Interval length in nanoseconds."""
        return self.end_ns - self.start_ns

    @property
    def construct(self) -> str | None:
        """Loop construct name from the payload, if present."""
        if isinstance(self.payload, tuple) and len(self.payload) >= 2:
            return self.payload[1]
        return None

    @property
    def loop_seq(self) -> int | None:
        """Posted-loop sequence number from the payload, if present."""
        if isinstance(self.payload, tuple) and len(self.payload) >= 1:
            return self.payload[0]
        return None


def extract_intervals(
    events: list[TraceEvent], end_ns: int | None = None
) -> list[Interval]:
    """Pair enter/exit events into intervals.

    Events are paired per (processor, kind), LIFO when the same kind
    nests on one processor (e.g. serialised OS services recorded
    back-to-back); an unclosed interval is closed at *end_ns* when
    given, otherwise dropped.  Raises ``ValueError`` on a close without
    a matching open, which would indicate corrupt instrumentation.
    """
    open_events: dict[tuple[int, EventType], list[TraceEvent]] = {}
    intervals: list[Interval] = []
    for event in events:
        etype = event.event_type
        if etype in _PAIRS:
            key = (event.processor_id, etype)
            open_events.setdefault(key, []).append(event)
        elif etype in _CLOSERS:
            opener_type = _CLOSERS[etype]
            key = (event.processor_id, opener_type)
            stack = open_events.get(key)
            if not stack:
                raise ValueError(
                    f"{etype.name} without matching {opener_type.name} on "
                    f"processor {event.processor_id} at t={event.timestamp_ns}"
                )
            opener = stack.pop()
            intervals.append(
                Interval(
                    kind=_PAIRS[opener_type][1],
                    processor_id=event.processor_id,
                    task_id=opener.task_id,
                    start_ns=opener.timestamp_ns,
                    end_ns=event.timestamp_ns,
                    payload=opener.payload,
                )
            )
    if end_ns is not None:
        for (processor_id, opener_type), stack in open_events.items():
            for opener in stack:
                intervals.append(
                    Interval(
                        kind=_PAIRS[opener_type][1],
                        processor_id=processor_id,
                        task_id=opener.task_id,
                        start_ns=opener.timestamp_ns,
                        end_ns=end_ns,
                        payload=opener.payload,
                    )
                )
    intervals.sort(key=lambda iv: (iv.start_ns, iv.end_ns))
    return intervals


def intervals_of(
    intervals: list[Interval],
    kind: IntervalKind,
    task_id: int | None = None,
    construct: str | None = None,
) -> list[Interval]:
    """Filter intervals by kind and optionally task and construct."""
    out = []
    for interval in intervals:
        if interval.kind is not kind:
            continue
        if task_id is not None and interval.task_id != task_id:
            continue
        if construct is not None and interval.construct != construct:
            continue
        out.append(interval)
    return out
