"""Completion-time and user-time breakdowns (Figures 3 and 4-9).

Two views, mirroring the paper:

* :func:`ct_breakdown` -- the "Q"-facility view of Section 5: cluster
  time split into user, system, interrupt and kernel-lock spin time.
* :func:`user_breakdown` -- the Section 6 view: the user time of each
  task split into useful work (serial code, main cluster-only loops,
  s(x)doall iteration execution) and parallelization overheads (loop
  setup, iteration pickup, barrier wait, helper busy-wait), computed
  from the cedarhpm event traces exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runner import RunResult
from repro.core.trace_analysis import Interval, IntervalKind, extract_intervals
from repro.runtime.loops import LoopConstruct
from repro.xylem.categories import TimeCategory

__all__ = [
    "MemoryDecomposition",
    "UserTimeBreakdown",
    "ct_breakdown",
    "memory_decomposition",
    "user_breakdown",
    "task_ids",
]

_MC_CONSTRUCTS = {LoopConstruct.CLUSTER_ONLY.value, LoopConstruct.CDOACROSS.value}


def _intervals(result: RunResult) -> list[Interval]:
    cached = result._cache.get("intervals")
    if cached is None:
        cached = extract_intervals(result.events, end_ns=result.ct_ns)
        result._cache["intervals"] = cached
    return cached


def task_ids(result: RunResult) -> list[int]:
    """Task ids of the run: 0 is the main task, 1.. are helpers."""
    return list(range(result.config.n_clusters))


def ct_breakdown(result: RunResult, cluster_id: int) -> dict[TimeCategory, int]:
    """Figure-3 breakdown of one cluster's completion time (ns)."""
    return result.accounting.breakdown(cluster_id, result.ct_ns)


@dataclass(frozen=True)
class UserTimeBreakdown:
    """Figure 4's decomposition of one task's time (nanoseconds).

    Below-the-line (useful) components: ``serial_ns``, ``mc_loop_ns``,
    ``iter_sdoall_ns``, ``iter_xdoall_ns``.  Above-the-line
    (parallelization overhead) components: ``setup_ns``,
    ``pickup_sdoall_ns``, ``pickup_xdoall_ns``, ``barrier_ns``,
    ``helper_wait_ns``.  Per-CE quantities (iteration execution and
    xdoall pickup) are averaged over the cluster's CEs so every
    component is commensurable with the task's wall-clock time.
    """

    task_id: int
    wall_ns: int
    serial_ns: float
    mc_loop_ns: float
    iter_sdoall_ns: float
    iter_xdoall_ns: float
    setup_ns: float
    pickup_sdoall_ns: float
    pickup_xdoall_ns: float
    barrier_ns: float
    helper_wait_ns: float

    @property
    def useful_ns(self) -> float:
        """Below-the-line time (serial + mc + iteration execution)."""
        return self.serial_ns + self.mc_loop_ns + self.iter_sdoall_ns + self.iter_xdoall_ns

    @property
    def overhead_ns(self) -> float:
        """Parallelization overhead (above-the-line) time."""
        return (
            self.setup_ns
            + self.pickup_sdoall_ns
            + self.pickup_xdoall_ns
            + self.barrier_ns
            + self.helper_wait_ns
        )

    @property
    def overhead_fraction(self) -> float:
        """Parallelization overhead as a fraction of the task's time."""
        if self.wall_ns == 0:
            return 0.0
        return self.overhead_ns / self.wall_ns

    def fraction(self, component_ns: float) -> float:
        """Any component as a fraction of the task's wall time."""
        if self.wall_ns == 0:
            return 0.0
        return component_ns / self.wall_ns

    def as_dict(self) -> dict[str, float]:
        """Component values by name (for table rendering)."""
        return {
            "serial": self.serial_ns,
            "mc_loop": self.mc_loop_ns,
            "iter_sdoall": self.iter_sdoall_ns,
            "iter_xdoall": self.iter_xdoall_ns,
            "setup": self.setup_ns,
            "pickup_sdoall": self.pickup_sdoall_ns,
            "pickup_xdoall": self.pickup_xdoall_ns,
            "barrier_wait": self.barrier_ns,
            "helper_wait": self.helper_wait_ns,
        }


@dataclass(frozen=True)
class MemoryDecomposition:
    """Section 7's split of global-memory time into ideal and stall.

    All values are simulated nanoseconds summed over every burst a
    cluster's CEs streamed: ``busy_ns`` is the wall time spent
    streaming, ``ideal_ns`` what the same bursts would have taken with
    a single requester, and ``stall_ns`` their difference -- the time
    attributable to network and bank contention.
    """

    busy_ns: list[int]
    ideal_ns: list[int]
    stall_ns: list[int]

    @property
    def total_busy_ns(self) -> int:
        """Machine-wide streaming time."""
        return sum(self.busy_ns)

    @property
    def total_ideal_ns(self) -> int:
        """Machine-wide uncontended streaming time."""
        return sum(self.ideal_ns)

    @property
    def total_stall_ns(self) -> int:
        """Machine-wide contention stall time."""
        return sum(self.stall_ns)

    @property
    def stall_fraction(self) -> float:
        """Stall time as a fraction of streaming time."""
        if self.total_busy_ns == 0:
            return 0.0
        return self.total_stall_ns / self.total_busy_ns


def memory_decomposition(result: RunResult) -> MemoryDecomposition:
    """Per-cluster busy/ideal/stall split of global-memory streaming.

    Reads the machine's always-on :class:`~repro.hardware.machine.MemoryLedger`,
    the same source the ``repro.obs`` metrics collector uses for its
    ``memory.cluster*`` series, so the two views agree by construction.
    """
    ledger = result.machine.mem_ledger
    n = result.config.n_clusters
    return MemoryDecomposition(
        busy_ns=list(ledger.busy_ns),
        ideal_ns=list(ledger.ideal_ns),
        stall_ns=[ledger.stall_ns(c) for c in range(n)],
    )


def user_breakdown(result: RunResult, task_id: int) -> UserTimeBreakdown:
    """Compute the Figure 4 breakdown for one task from the traces."""
    intervals = _intervals(result)
    per_cluster = result.config.ces_per_cluster
    serial = mc = setup = barrier = wait = 0.0
    iter_sd = iter_xd = pick_sd = pick_xd = 0.0
    for interval in intervals:
        if interval.task_id != task_id:
            continue
        kind = interval.kind
        if kind is IntervalKind.SERIAL:
            serial += interval.duration_ns
        elif kind is IntervalKind.MC_LOOP:
            mc += interval.duration_ns
        elif kind is IntervalKind.SETUP:
            setup += interval.duration_ns
        elif kind is IntervalKind.BARRIER:
            barrier += interval.duration_ns
        elif kind is IntervalKind.HELPER_WAIT:
            wait += interval.duration_ns
        elif kind is IntervalKind.ITERATION:
            construct = interval.construct
            if construct in _MC_CONSTRUCTS:
                continue  # contained in the MC_LOOP interval
            if construct == LoopConstruct.XDOALL.value:
                iter_xd += interval.duration_ns / per_cluster
            else:
                iter_sd += interval.duration_ns / per_cluster
        elif kind is IntervalKind.PICKUP:
            if interval.construct == LoopConstruct.XDOALL.value:
                pick_xd += interval.duration_ns / per_cluster
            else:
                # SDOALL outer pickups happen on the lead CE only: they
                # are task-level events, not averaged.
                pick_sd += interval.duration_ns
    return UserTimeBreakdown(
        task_id=task_id,
        wall_ns=result.ct_ns,
        serial_ns=serial,
        mc_loop_ns=mc,
        iter_sdoall_ns=iter_sd,
        iter_xdoall_ns=iter_xd,
        setup_ns=setup,
        pickup_sdoall_ns=pick_sd,
        pickup_xdoall_ns=pick_xd,
        barrier_ns=barrier,
        helper_wait_ns=wait,
    )
