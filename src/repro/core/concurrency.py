"""Average parallel-loop concurrency (Section 7, Table 3).

Implements the paper's estimation methodology verbatim: from ``pf``,
the fraction of completion time each cluster spends on parallel-loop
execution, and ``avg_concurr``, the statfx-measured average concurrency
of the cluster, solve

    (1 - pf) + pf * par_concurr = avg_concurr

for ``par_concurr``, the average number of CEs involved while the
cluster executes parallel loops.  The concurrency during non-parallel
work (serial code, sdoall outer pickup, barrier spinning, busy-waiting
for work) is 1 on each cluster.
"""

from __future__ import annotations

from repro.core.runner import RunResult
from repro.core.trace_analysis import IntervalKind
from repro.hpm.events import EventType

__all__ = [
    "loop_regions",
    "parallel_fraction",
    "average_concurrency",
    "parallel_loop_concurrency",
    "total_parallel_loop_concurrency",
]


def loop_regions(result: RunResult, task_id: int) -> list[tuple[int, int]]:
    """Parallel-loop execution regions of one task, as (start, end) ns.

    For the main task a spread loop's region runs from the loop post to
    the main task entering the finish barrier; main cluster-only loops
    contribute their full interval.  For a helper task a region runs
    from joining the loop to detaching from it.
    """
    from repro.core.breakdown import _intervals  # shared interval cache

    regions: list[tuple[int, int]] = []
    if task_id == 0:
        post_ns: dict[object, int] = {}
        for event in result.events:
            if event.task_id != 0:
                continue
            if event.event_type == EventType.LOOP_POST:
                post_ns[_seq(event.payload)] = event.timestamp_ns
            elif event.event_type == EventType.BARRIER_ENTER:
                seq = _seq(event.payload)
                start = post_ns.pop(seq, None)
                if start is not None:
                    regions.append((start, event.timestamp_ns))
        for interval in _intervals(result):
            if interval.task_id == 0 and interval.kind is IntervalKind.MC_LOOP:
                regions.append((interval.start_ns, interval.end_ns))
    else:
        join_ns: dict[object, int] = {}
        for event in result.events:
            if event.task_id != task_id:
                continue
            if event.event_type == EventType.HELPER_JOIN:
                join_ns[_seq(event.payload)] = event.timestamp_ns
            elif event.event_type == EventType.LOOP_DETACH:
                seq = _seq(event.payload)
                start = join_ns.pop(seq, None)
                if start is not None:
                    regions.append((start, event.timestamp_ns))
    regions.sort()
    return regions


def _seq(payload: object) -> object:
    if isinstance(payload, tuple) and payload:
        return payload[0]
    return payload


def parallel_fraction(result: RunResult, task_id: int) -> float:
    """``pf``: fraction of CT the task spends on parallel-loop work."""
    if result.ct_ns == 0:
        return 0.0
    total = sum(end - start for start, end in loop_regions(result, task_id))
    return min(1.0, total / result.ct_ns)


def average_concurrency(result: RunResult, cluster_id: int) -> float:
    """statfx-measured average concurrency of one cluster."""
    value = result.statfx.cluster_concurrency(cluster_id)
    if value == 0.0:
        # Sparse sampling fallback: the exact time-weighted board value.
        value = result.board.mean_concurrency(cluster_id)
    return value


def parallel_loop_concurrency(result: RunResult, task_id: int) -> float:
    """Table 3: average parallel-loop concurrency of one task.

    Solves the paper's equation; degenerate cases (no parallel work)
    return 1.0, and the result is clamped to the physical range
    [1, ces_per_cluster].
    """
    pf = parallel_fraction(result, task_id)
    if pf <= 0.0:
        return 1.0
    avg = average_concurrency(result, task_id)
    par = (avg - (1.0 - pf)) / pf
    return max(1.0, min(float(result.config.ces_per_cluster), par))


def total_parallel_loop_concurrency(result: RunResult) -> float:
    """Sum of per-task parallel-loop concurrency over all clusters."""
    return sum(
        parallel_loop_concurrency(result, task)
        for task in range(result.config.n_clusters)
    )
