"""Closed-form completion-time predictor.

A back-of-envelope model of the simulated machine, in the spirit of the
performance-prediction work the paper's introduction surveys (Koss,
Saavedra-Barrera): completion time as serial time plus parallel time
divided by effective concurrency, stretched by contention, plus OS and
distribution overheads.  Validated against the full simulation by
``tests/core/test_model.py``; useful for quickly sizing experiments
before running them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppModel, LoopShape
from repro.hardware.config import CedarConfig, paper_configuration
from repro.hardware.contention import ContentionModel
from repro.runtime.loops import LoopConstruct

__all__ = ["PredictedTime", "predict_completion_time"]


@dataclass(frozen=True)
class PredictedTime:
    """Predicted completion-time decomposition (seconds, full scale)."""

    serial_s: float
    parallel_s: float
    contention_s: float
    os_s: float

    @property
    def total_s(self) -> float:
        """Predicted completion time."""
        return self.serial_s + self.parallel_s + self.contention_s + self.os_s


def _loop_effective_width(shape: LoopShape, config: CedarConfig) -> float:
    """Average CEs usefully busy while the loop executes."""
    per_cluster = config.ces_per_cluster
    if shape.construct in (LoopConstruct.CLUSTER_ONLY, LoopConstruct.CDOACROSS):
        chunks = -(-shape.n_inner // per_cluster)
        return shape.n_inner / chunks
    if shape.construct is LoopConstruct.XDOALL:
        total = shape.n_outer * shape.n_inner
        machine = config.n_processors
        rounds = -(-total // machine)
        return total / rounds
    # SDOALL: outer iterations round-robin the clusters; the inner
    # CDOALL spreads over each cluster's CEs.
    outer_rounds = -(-shape.n_outer // config.n_clusters)
    inner_chunks = -(-shape.n_inner // per_cluster)
    clusters_busy = shape.n_outer / outer_rounds
    inner_width = shape.n_inner / inner_chunks
    return clusters_busy * inner_width


def predict_completion_time(app: AppModel, n_processors: int) -> PredictedTime:
    """Predict the full-scale completion time of *app*.

    The prediction mirrors the simulator's mechanisms analytically:
    loop time is single-CE time over the loop's effective width; the
    memory part of each iteration is stretched by the contention
    model's slowdown at that width; a flat percentage approximates the
    OS daemons.
    """
    config = paper_configuration(n_processors)
    contention = ContentionModel(config)
    serial_s = app.nominal_serial_ns() / 1e9

    parallel_s = 0.0
    contention_s = 0.0
    for shape in app.loops_per_step:
        loop_total_s = shape.total_single_ce_ns * app.n_steps / 1e9
        width = _loop_effective_width(shape, config)
        base = loop_total_s / width
        parallel_s += base
        if shape.mem_fraction > 0.0:
            requesters = max(1, round(width))
            cluster_requesters = min(requesters, config.ces_per_cluster)
            slowdown = contention.vector_time_cycles(
                1000, requesters, shape.mem_rate, cluster_requesters
            ) / contention.vector_time_cycles(1000, 1, shape.mem_rate, 1)
            contention_s += base * shape.mem_fraction * (slowdown - 1.0)

    busy_s = serial_s + parallel_s + contention_s
    os_s = busy_s * 0.06  # flat approximation of the OS daemons
    return PredictedTime(
        serial_s=serial_s,
        parallel_s=parallel_s,
        contention_s=contention_s,
        os_s=os_s,
    )
