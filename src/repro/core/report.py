"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_value"]


def format_value(value: object, precision: int = 2) -> str:
    """Human-friendly cell formatting."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    text_rows = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)
