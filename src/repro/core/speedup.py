"""Completion times, speedups and concurrency (Section 3, Table 1)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runner import RunResult

__all__ = ["SpeedupRow", "speedup_table"]


@dataclass(frozen=True)
class SpeedupRow:
    """One (application, configuration) row of Table 1."""

    n_processors: int
    #: Extrapolated full-scale completion time in seconds.
    ct_seconds: float
    #: Speedup over the 1-processor configuration.
    speedup: float
    #: statfx average concurrency, summed over clusters.
    concurrency: float


def speedup_table(results: dict[int, RunResult]) -> list[SpeedupRow]:
    """Build Table 1 rows from per-configuration run results.

    *results* maps processor count to :class:`RunResult`; the
    1-processor entry is the speedup baseline and must be present.
    """
    if 1 not in results:
        raise ValueError("speedup_table needs the 1-processor baseline run")
    base_ct = results[1].ct_seconds
    rows = []
    for n_proc in sorted(results):
        result = results[n_proc]
        concurrency = result.statfx.total_concurrency()
        if concurrency == 0.0:
            concurrency = result.board.mean_concurrency()
        rows.append(
            SpeedupRow(
                n_processors=n_proc,
                ct_seconds=result.ct_seconds,
                speedup=base_ct / result.ct_seconds if result.ct_seconds else 0.0,
                concurrency=concurrency,
            )
        )
    return rows
