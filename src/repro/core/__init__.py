"""The paper's methodology: running, measuring and decomposing.

This package is the reproduction's *primary contribution* layer: the
experiment runner (Section 4's measurement setup), the completion-time
and user-time breakdowns (Sections 5 and 6), the parallel-loop
concurrency equation and the contention-overhead estimator (Section 7),
plus the paper's published numbers for comparison.
"""

from repro.core.breakdown import (
    MemoryDecomposition,
    UserTimeBreakdown,
    ct_breakdown,
    memory_decomposition,
    user_breakdown,
)
from repro.core.concurrency import (
    average_concurrency,
    loop_regions,
    parallel_fraction,
    parallel_loop_concurrency,
    total_parallel_loop_concurrency,
)
from repro.core.figures import render_ct_bars, render_user_bars, stacked_bar
from repro.core.model import PredictedTime, predict_completion_time
from repro.core.contention import (
    ContentionRow,
    contention_overhead,
    t1_split_ns,
    tp_actual_ns,
)
from repro.core.report import render_table
from repro.core.resilience import (
    CellFailure,
    SweepOutcome,
    failure_report,
    render_partial_table,
    resilient_sweep,
    save_failure_report,
)
from repro.core.runner import DEFAULT_SCALE, RunResult, run_application, run_phases
from repro.core.speedup import SpeedupRow, speedup_table
from repro.core.trace_analysis import (
    Interval,
    IntervalKind,
    extract_intervals,
    intervals_of,
)

__all__ = [
    "CellFailure",
    "ContentionRow",
    "DEFAULT_SCALE",
    "Interval",
    "IntervalKind",
    "MemoryDecomposition",
    "PredictedTime",
    "RunResult",
    "SpeedupRow",
    "SweepOutcome",
    "UserTimeBreakdown",
    "average_concurrency",
    "contention_overhead",
    "ct_breakdown",
    "extract_intervals",
    "failure_report",
    "intervals_of",
    "loop_regions",
    "memory_decomposition",
    "parallel_fraction",
    "parallel_loop_concurrency",
    "predict_completion_time",
    "render_ct_bars",
    "render_partial_table",
    "render_table",
    "render_user_bars",
    "resilient_sweep",
    "save_failure_report",
    "stacked_bar",
    "run_application",
    "run_phases",
    "speedup_table",
    "t1_split_ns",
    "total_parallel_loop_concurrency",
    "tp_actual_ns",
    "user_breakdown",
]
