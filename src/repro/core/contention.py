"""Global memory and network contention overhead (Section 7, Table 4).

Implements the paper's estimation methodology: the time the 1-processor
configuration takes to execute the parallel-loop code is the *ideal*
total processing time for the machine's network and memory (it contains
no cross-CE contention); on a multiprocessor configuration the ideal
parallel-loop time is that total divided by the average parallel-loop
concurrency, and the contention overhead is the excess of the measured
parallel-loop time over the ideal, as a percentage of completion time:

    single cluster:  T_ideal = (T1_mc + T1_sx) / par_concurr
    multicluster:    T_ideal = T1_mc / par_concurr_main
                             + T1_sx / par_concurr_total
    Ov_cont = (T_actual - T_ideal) / CT * 100
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.concurrency import (
    loop_regions,
    parallel_loop_concurrency,
    total_parallel_loop_concurrency,
)
from repro.core.runner import RunResult
from repro.core.trace_analysis import IntervalKind

__all__ = ["ContentionRow", "tp_actual_ns", "t1_split_ns", "contention_overhead"]


@dataclass(frozen=True)
class ContentionRow:
    """One (application, configuration) row of Table 4."""

    #: Measured parallel-loop execution time (ns, simulated scale).
    tp_actual_ns: float
    #: Ideal parallel-loop execution time (ns, simulated scale).
    tp_ideal_ns: float
    #: Completion time (ns, simulated scale).
    ct_ns: int

    @property
    def ov_cont_pct(self) -> float:
        """Contention overhead as percent of completion time."""
        if self.ct_ns == 0:
            return 0.0
        return (self.tp_actual_ns - self.tp_ideal_ns) / self.ct_ns * 100.0


def tp_actual_ns(result: RunResult) -> float:
    """Measured parallel-loop execution time of the main task."""
    return float(sum(end - start for start, end in loop_regions(result, task_id=0)))


def t1_split_ns(result_1proc: RunResult) -> tuple[float, float]:
    """(T1_mc, T1_sx): 1-processor parallel-loop time split.

    ``T1_mc`` is the time in main cluster-only loops, ``T1_sx`` the
    time in spread (s(x)doall) loops, both on the 1-processor run.
    """
    if result_1proc.n_processors != 1:
        raise ValueError(
            f"t1_split_ns needs the 1-processor run, got "
            f"{result_1proc.n_processors} processors"
        )
    from repro.core.breakdown import _intervals

    t1_mc = 0.0
    for interval in _intervals(result_1proc):
        if interval.task_id == 0 and interval.kind is IntervalKind.MC_LOOP:
            t1_mc += interval.duration_ns
    total = tp_actual_ns(result_1proc)
    return t1_mc, max(0.0, total - t1_mc)


def contention_overhead(result: RunResult, result_1proc: RunResult) -> ContentionRow:
    """Estimate the contention overhead of *result* (Table 4 row).

    ``result_1proc`` must be the same application at the same scale on
    the 1-processor configuration.
    """
    if result.app_name != result_1proc.app_name:
        raise ValueError(
            f"application mismatch: {result.app_name} vs {result_1proc.app_name}"
        )
    if abs(result.scale - result_1proc.scale) > 1e-12:
        raise ValueError(
            f"scale mismatch: {result.scale} vs {result_1proc.scale}"
        )
    t1_mc, t1_sx = t1_split_ns(result_1proc)
    if result.config.n_clusters == 1:
        par = parallel_loop_concurrency(result, task_id=0)
        tp_ideal = (t1_mc + t1_sx) / par
    else:
        par_main = parallel_loop_concurrency(result, task_id=0)
        par_total = total_parallel_loop_concurrency(result)
        tp_ideal = t1_mc / par_main + t1_sx / par_total
    return ContentionRow(
        tp_actual_ns=tp_actual_ns(result),
        tp_ideal_ns=tp_ideal,
        ct_ns=result.ct_ns,
    )
