"""Resilient sweeps: isolate per-cell failures, report, keep going.

A paper-scale sweep is many independent ``(app, P)`` cells; one
misbehaving cell (a runaway simulation, a suspected deadlock, a fault
campaign that trips a guard) should cost that cell, not the sweep.
:func:`resilient_sweep` runs every cell under a try/except with one
bounded same-seed retry, collects structured :class:`CellFailure`
records, and still renders partial tables with the failed cells marked
(:func:`render_partial_table`) plus a JSON failure report
(:func:`failure_report`).
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.reference import CONFIGS
from repro.core.report import render_table
from repro.core.runner import DEFAULT_SCALE, RunResult, run_application
from repro.xylem.params import XylemParams

__all__ = [
    "CellFailure",
    "SweepOutcome",
    "failure_report",
    "render_partial_table",
    "resilient_sweep",
    "save_failure_report",
]


@dataclass(frozen=True)
class CellFailure:
    """One sweep cell that failed all its attempts."""

    app: str
    n_processors: int
    attempts: int
    error_type: str
    message: str


@dataclass
class SweepOutcome:
    """Everything a resilient sweep produced, complete or not."""

    scale: float
    seed: int
    results: dict[str, dict[int, RunResult]] = field(default_factory=dict)
    failures: list[CellFailure] = field(default_factory=list)
    #: ``cedar-repro/recovery-report/v1`` dict when the sweep ran through
    #: the durable layer (:mod:`repro.parallel.durable`); ``None``
    #: otherwise.
    recovery: dict | None = None

    @property
    def ok(self) -> bool:
        """Whether every cell completed."""
        return not self.failures

    def failed_cells(self) -> set[tuple[str, int]]:
        """The ``(app, P)`` cells that failed."""
        return {(f.app, f.n_processors) for f in self.failures}


def resilient_sweep(
    apps: Iterable[str],
    configs: Iterable[int] = CONFIGS,
    scale: float = DEFAULT_SCALE,
    seed: int = 1994,
    retries: int = 1,
    run_cell: Callable[[str, int], RunResult] | None = None,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    campaign=None,
    metrics=None,
    telemetry=None,
    checkpoint: str | Path | None = None,
    chaos=None,
    durable_policy=None,
    **run_kwargs,
) -> SweepOutcome:
    """Sweep ``apps x configs``, isolating each cell's failures.

    Each cell gets ``1 + retries`` attempts under the *same* seed (the
    model is deterministic, so a retry only helps against host-side
    trouble -- but it distinguishes "deterministic failure" from "flaky
    harness" in the report).  *run_cell* overrides how one cell is
    executed (the seam the fault-campaign CLI and the tests use);
    the default runs :func:`run_application` with ``XylemParams(seed)``.

    With ``jobs > 1``, a *cache_dir*, or a *campaign* the sweep is
    delegated to :func:`repro.parallel.parallel_sweep`: cells fan out
    across worker processes and/or are served from the content-addressed
    result cache, with the same per-cell isolation and retry semantics
    (results are then detached snapshots).  The *run_cell* seam is
    serial-only -- closures don't cross process boundaries.  Passing a
    :class:`~repro.obs.campaign.CampaignTelemetry` as *telemetry* also
    routes through the parallel path, so resilient campaign sweeps log
    through the same event-log/progress/report seam as pooled ones.

    A *checkpoint* journal path routes through the crash-safe layer
    (:mod:`repro.parallel.durable`): cells are journaled before
    dispatch, an existing journal resumes, and the outcome carries a
    recovery report; *chaos* (a
    :class:`~repro.faults.host.HostChaosPlan`) and *durable_policy*
    (a :class:`~repro.parallel.durable.DurablePolicy`) configure the
    host-fault harness and health monitor (``docs/resilience.md``).
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")

    if (
        jobs != 1
        or cache_dir is not None
        or campaign is not None
        or telemetry is not None
        or checkpoint is not None
        or chaos is not None
        or durable_policy is not None
    ):
        if run_cell is not None:
            raise ValueError(
                "run_cell is a serial-only seam; use CellSpec/execute_cells "
                "for custom parallel cells"
            )
        from repro.parallel import parallel_sweep

        supported = {"max_events", "max_sim_time", "statfx_interval_ns"}
        unknown = set(run_kwargs) - supported
        if unknown:
            raise ValueError(
                f"unsupported sweep options for the parallel path: {sorted(unknown)}"
            )
        return parallel_sweep(
            apps,
            configs=configs,
            scale=scale,
            seed=seed,
            jobs=jobs,
            cache_dir=cache_dir,
            campaign=campaign,
            retries=retries,
            metrics=metrics,
            telemetry=telemetry,
            checkpoint=checkpoint,
            chaos=chaos,
            durable_policy=durable_policy,
            **run_kwargs,
        )

    if run_cell is None:
        from repro.apps import PAPER_APPS

        def run_cell(app: str, n_proc: int) -> RunResult:
            kwargs = dict(run_kwargs)
            kwargs.setdefault("os_params", XylemParams(seed=seed))
            return run_application(PAPER_APPS[app](), n_proc, scale=scale, **kwargs)

    outcome = SweepOutcome(scale=scale, seed=seed)
    for app in apps:
        by_config: dict[int, RunResult] = {}
        for n_proc in configs:
            attempts = 0
            while True:
                attempts += 1
                try:
                    by_config[n_proc] = run_cell(app, n_proc)
                    break
                except Exception as exc:  # noqa: BLE001 - isolation point
                    if attempts <= retries:
                        continue
                    outcome.failures.append(
                        CellFailure(
                            app=app,
                            n_processors=n_proc,
                            attempts=attempts,
                            error_type=type(exc).__name__,
                            message=str(exc),
                        )
                    )
                    break
        outcome.results[app] = by_config
    return outcome


def render_partial_table(outcome: SweepOutcome) -> str:
    """CT/speedup table with failed cells marked ``FAILED(<ErrorType>)``."""
    failures = {
        (f.app, f.n_processors): f.error_type for f in outcome.failures
    }
    rows: list[list[object]] = []
    for app, by_config in outcome.results.items():
        baseline = by_config.get(1)
        procs = sorted(
            set(by_config) | {p for a, p in failures if a == app}
        )
        for n_proc in procs:
            result = by_config.get(n_proc)
            if result is None:
                rows.append(
                    [app, n_proc, f"FAILED({failures[(app, n_proc)]})", None, "failed"]
                )
                continue
            speedup = (
                baseline.ct_seconds / result.ct_seconds
                if baseline is not None and result.ct_seconds > 0
                else None
            )
            rows.append([app, n_proc, result.ct_seconds, speedup, "ok"])
    headers = ["app", "procs", "CT (s)", "speedup", "status"]
    title = "Sweep results"
    if outcome.failures:
        title += f" (partial: {len(outcome.failures)} cell(s) failed)"
    return render_table(headers, rows, title=title)


def failure_report(outcome: SweepOutcome) -> dict:
    """JSON-serialisable report of a sweep's failures.

    The header carries the code fingerprint beside the seed, so a
    report can be matched to the exact code state that produced it
    (the same provenance tagging the campaign log uses).
    """
    from repro.parallel.cache import code_fingerprint

    cells_ok = sum(len(by_config) for by_config in outcome.results.values())
    return {
        "schema": "cedar-repro/failure-report/v1",
        "code_fingerprint": code_fingerprint(),
        "scale": outcome.scale,
        "seed": outcome.seed,
        "cells_ok": cells_ok,
        "cells_failed": len(outcome.failures),
        "failures": [
            {
                "app": f.app,
                "n_processors": f.n_processors,
                "attempts": f.attempts,
                "error_type": f.error_type,
                "message": f.message,
            }
            for f in outcome.failures
        ],
    }


def save_failure_report(outcome: SweepOutcome, path: str | Path) -> None:
    """Write :func:`failure_report` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(failure_report(outcome), indent=2) + "\n")
