"""Golden-table baselines: freeze the paper tables, catch drift.

The model is deterministic, so the full table set at a fixed (scale,
seed) is a *contract*: any code change that shifts a number is either
an intentional model change (regenerate the golden via
``scripts/refresh_golden.py`` and review the diff) or a regression
(the golden test catches it).  The baseline lives in
``tests/golden/tables_v1.json`` and covers Tables 1-4 plus Figure 3
at the benchmark point (scale 0.02, seed 1994).

Values are compared with a tight relative tolerance rather than byte
equality so the baseline survives harmless float-formatting changes
while still flagging any real numeric drift.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.experiments import figure3, table1, table2, table3, table4
from repro.core.runner import RunResult

__all__ = [
    "GOLDEN_SCHEMA",
    "TABLE2_APPS",
    "compare_golden",
    "golden_payload",
    "load_golden",
    "save_golden",
]

GOLDEN_SCHEMA = "cedar-repro/golden-tables/v1"

#: Applications the paper's Table 2 reports (the CLI uses the same set).
TABLE2_APPS = ("FLO52", "ARC2D", "MDG")


def golden_payload(
    sweep: dict[str, dict[int, RunResult]], scale: float, seed: int
) -> dict:
    """Build the golden document from a full ``apps x configs`` sweep."""
    sweep32 = {app: by_config[32] for app, by_config in sweep.items()}
    tables = {
        "table1": table1(sweep)[0],
        "table2": table2({a: sweep32[a] for a in TABLE2_APPS})[0],
        "table3": table3(sweep)[0],
        "table4": table4(sweep)[0],
        "figure3": figure3(sweep)[0],
    }
    return {
        "schema": GOLDEN_SCHEMA,
        "scale": scale,
        "seed": seed,
        "tables": tables,
    }


def save_golden(payload: dict, path: str | Path) -> None:
    """Write a golden document as pretty-printed JSON."""
    Path(path).write_text(json.dumps(payload, indent=1) + "\n")


def load_golden(path: str | Path) -> dict:
    """Load a golden document, validating its schema marker."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != GOLDEN_SCHEMA:
        raise ValueError(
            f"not a golden-tables document: schema={payload.get('schema')!r}"
        )
    return payload


def _close(expected: float, actual: float, rtol: float, atol: float) -> bool:
    return abs(actual - expected) <= atol + rtol * abs(expected)


def compare_golden(
    expected: dict,
    actual: dict,
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> list[str]:
    """Diff two golden documents; return human-readable mismatch lines.

    An empty list means the documents agree: same tables, same row
    shapes, every non-numeric cell equal, every numeric cell within
    ``atol + rtol * |expected|``.
    """
    problems: list[str] = []
    for meta in ("schema", "scale", "seed"):
        if expected.get(meta) != actual.get(meta):
            problems.append(
                f"{meta}: expected {expected.get(meta)!r}, got {actual.get(meta)!r}"
            )
    exp_tables = expected.get("tables", {})
    act_tables = actual.get("tables", {})
    if set(exp_tables) != set(act_tables):
        problems.append(
            f"table set: expected {sorted(exp_tables)}, got {sorted(act_tables)}"
        )
        return problems
    for name in sorted(exp_tables):
        exp_rows, act_rows = exp_tables[name], act_tables[name]
        if len(exp_rows) != len(act_rows):
            problems.append(
                f"{name}: expected {len(exp_rows)} rows, got {len(act_rows)}"
            )
            continue
        for i, (exp_row, act_row) in enumerate(zip(exp_rows, act_rows)):
            if len(exp_row) != len(act_row):
                problems.append(
                    f"{name}[{i}]: expected {len(exp_row)} cells, "
                    f"got {len(act_row)}"
                )
                continue
            for j, (exp, act) in enumerate(zip(exp_row, act_row)):
                if isinstance(exp, bool) or isinstance(act, bool):
                    ok = exp == act
                elif isinstance(exp, (int, float)) and isinstance(act, (int, float)):
                    ok = _close(float(exp), float(act), rtol, atol)
                else:
                    ok = exp == act
                if not ok:
                    problems.append(
                        f"{name}[{i}][{j}]: expected {exp!r}, got {act!r}"
                    )
    return problems
