"""Text rendering of the paper's stacked-bar figures.

The paper presents the completion-time breakdown (Figure 3) and the
user-time breakdowns (Figures 5-9) as stacked bars per configuration
and task.  These functions render the same bars as horizontal ASCII
charts so a terminal user can see the shapes the tables encode.
"""

from __future__ import annotations

from repro.core.breakdown import ct_breakdown, user_breakdown
from repro.core.runner import RunResult
from repro.xylem.categories import TimeCategory

__all__ = ["render_ct_bars", "render_user_bars", "stacked_bar"]

#: One glyph per CT-breakdown category (Figure 3).
CT_GLYPHS = {
    TimeCategory.USER: ".",
    TimeCategory.SYSTEM: "S",
    TimeCategory.INTERRUPT: "I",
    TimeCategory.KSPIN: "K",
}

#: Glyphs for the user-time components (Figure 4's legend), in the
#: paper's below-the-line (useful) then above-the-line (overhead) order.
USER_GLYPHS = (
    ("serial", "="),
    ("mc_loop", "m"),
    ("iter_sdoall", "s"),
    ("iter_xdoall", "x"),
    ("setup", "u"),
    ("pickup_sdoall", "p"),
    ("pickup_xdoall", "P"),
    ("barrier_wait", "B"),
    ("helper_wait", "W"),
)


def stacked_bar(fractions: list[tuple[str, float]], width: int = 60) -> str:
    """Render one stacked bar from (glyph, fraction) pairs.

    Fractions are clipped to [0, 1]; rounding keeps the bar at most
    *width* characters, padding the remainder (unattributed time) with
    spaces.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    text = ""
    for glyph, fraction in fractions:
        cells = round(max(0.0, min(1.0, fraction)) * width)
        cells = min(cells, width - len(text))
        text += glyph * cells
        if len(text) >= width:
            break
    return text.ljust(width)


def render_ct_bars(
    results: dict[int, RunResult], cluster_id: int = 0, width: int = 60
) -> str:
    """Figure 3 as ASCII: one bar per configuration.

    Legend: ``.`` user, ``S`` system, ``I`` interrupt, ``K`` kernel spin.
    """
    lines = ["CT breakdown (. user | S system | I interrupt | K kspin)"]
    for n_proc in sorted(results):
        result = results[n_proc]
        breakdown = ct_breakdown(result, cluster_id)
        fractions = [
            (CT_GLYPHS[category], breakdown[category] / result.ct_ns)
            for category in (
                TimeCategory.USER,
                TimeCategory.SYSTEM,
                TimeCategory.INTERRUPT,
                TimeCategory.KSPIN,
            )
        ]
        lines.append(f"{n_proc:3d}p |{stacked_bar(fractions, width)}|")
    return "\n".join(lines)


def render_user_bars(result: RunResult, width: int = 60) -> str:
    """Figures 5-9 as ASCII: one bar per task of one run.

    Legend: ``=`` serial, ``m`` mc loops, ``s``/``x`` s(x)doall
    iterations, ``u`` setup, ``p``/``P`` pickups, ``B`` barrier wait,
    ``W`` helper wait; blank space is unattributed (intra-cluster idle
    and OS time).
    """
    lines = [
        "user-time breakdown (= serial | m mc | s/x iters | u setup | "
        "p/P pickup | B barrier | W wait)"
    ]
    for task_id in range(result.config.n_clusters):
        b = user_breakdown(result, task_id)
        components = b.as_dict()
        fractions = [
            (glyph, b.fraction(components[name])) for name, glyph in USER_GLYPHS
        ]
        name = "Main " if task_id == 0 else f"hlp{task_id} "
        lines.append(f"{name}|{stacked_bar(fractions, width)}|")
    return "\n".join(lines)
