"""High-level experiment harness: one function per paper table/figure.

Each ``table*``/``figure*`` function consumes :class:`RunResult`
objects produced by :func:`repro.core.runner.run_application` and
returns both structured rows and a rendered text table, side by side
with the paper's published values from :mod:`repro.core.reference`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.apps import PAPER_APPS
from repro.core import reference
from repro.core.breakdown import ct_breakdown, user_breakdown
from repro.core.concurrency import parallel_loop_concurrency
from repro.core.contention import contention_overhead
from repro.core.reference import CONFIGS
from repro.core.report import render_table
from repro.core.runner import DEFAULT_SCALE, RunResult, run_application
from repro.core.speedup import speedup_table
from repro.xylem.categories import OsActivity, TimeCategory

__all__ = [
    "sweep_application",
    "sweep_all",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure3",
    "figure_user_breakdown",
]


def sweep_application(
    app_name: str,
    configs: Iterable[int] = CONFIGS,
    scale: float = DEFAULT_SCALE,
    **run_kwargs,
) -> dict[int, RunResult]:
    """Run one paper application over the given configurations."""
    builder: Callable = PAPER_APPS[app_name]
    return {
        n_proc: run_application(builder(), n_proc, scale=scale, **run_kwargs)
        for n_proc in configs
    }


def sweep_all(
    apps: Iterable[str] = reference.APPS,
    configs: Iterable[int] = CONFIGS,
    scale: float = DEFAULT_SCALE,
    **run_kwargs,
) -> dict[str, dict[int, RunResult]]:
    """Run every application over every configuration."""
    return {
        app: sweep_application(app, configs=configs, scale=scale, **run_kwargs)
        for app in apps
    }


# -- Table 1: CTs, speedups, average concurrency ----------------------------


def table1(results: dict[str, dict[int, RunResult]]) -> tuple[list[list], str]:
    """Reproduce Table 1; paper values are interleaved for comparison."""
    rows: list[list] = []
    for app, by_config in results.items():
        for row in speedup_table(by_config):
            paper = reference.TABLE1.get(app, {}).get(row.n_processors)
            rows.append(
                [
                    app,
                    row.n_processors,
                    row.ct_seconds,
                    paper[0] if paper else None,
                    row.speedup,
                    paper[1] if paper else None,
                    row.concurrency,
                    paper[2] if paper else None,
                ]
            )
    headers = [
        "app",
        "procs",
        "CT (s)",
        "paper CT",
        "speedup",
        "paper",
        "concurr",
        "paper",
    ]
    return rows, render_table(headers, rows, title="Table 1: CTs, Speedups, Concurrency")


# -- Table 2: detailed OS overheads on the 4-cluster Cedar ---------------------


def table2(results_32: dict[str, RunResult]) -> tuple[list[list], str]:
    """Reproduce Table 2 for the given 32-processor runs."""
    rows: list[list] = []
    for app, result in results_32.items():
        paper_app = reference.TABLE2.get(app, {})
        for activity in OsActivity:
            ns = result.accounting.activity_total_ns(activity)
            seconds = result.seconds(ns)
            pct = result.fraction_of_ct(ns) * 100.0
            paper = paper_app.get(activity.value)
            rows.append(
                [
                    app,
                    activity.value,
                    seconds,
                    paper[0] if paper else None,
                    pct,
                    paper[1] if paper else None,
                ]
            )
    headers = ["app", "overhead", "(s)", "paper (s)", "% CT", "paper %"]
    return rows, render_table(
        headers, rows, title="Table 2: Detailed OS overheads (4-cluster Cedar)"
    )


# -- Table 3: average parallel-loop concurrency ---------------------------------


def table3(results: dict[str, dict[int, RunResult]]) -> tuple[list[list], str]:
    """Reproduce Table 3 (per-task parallel-loop concurrency)."""
    rows: list[list] = []
    for app, by_config in results.items():
        for n_proc, result in sorted(by_config.items()):
            if n_proc == 1:
                continue
            paper_cfg = reference.TABLE3.get(app, {}).get(n_proc, {})
            for task_id in range(result.config.n_clusters):
                name = "Main" if task_id == 0 else f"helper{task_id}"
                value = parallel_loop_concurrency(result, task_id)
                rows.append([app, n_proc, name, value, paper_cfg.get(name)])
    headers = ["app", "procs", "task", "par_concurr", "paper"]
    return rows, render_table(headers, rows, title="Table 3: Average Parallel Loop Concurrency")


# -- Table 4: global memory and network contention overhead -----------------------


def table4(results: dict[str, dict[int, RunResult]]) -> tuple[list[list], str]:
    """Reproduce Table 4 (contention overhead estimation)."""
    rows: list[list] = []
    for app, by_config in results.items():
        base = by_config[1]
        for n_proc, result in sorted(by_config.items()):
            paper = reference.TABLE4.get(app, {}).get(n_proc)
            if n_proc == 1:
                from repro.core.contention import tp_actual_ns

                rows.append(
                    [
                        app,
                        1,
                        base.seconds(tp_actual_ns(base)),
                        paper[0] if paper else None,
                        None,
                        None,
                        None,
                        None,
                    ]
                )
                continue
            row = contention_overhead(result, base)
            rows.append(
                [
                    app,
                    n_proc,
                    result.seconds(row.tp_actual_ns),
                    paper[0] if paper else None,
                    result.seconds(row.tp_ideal_ns),
                    paper[1] if paper else None,
                    row.ov_cont_pct,
                    paper[2] if paper else None,
                ]
            )
    headers = [
        "app",
        "procs",
        "Tp_act (s)",
        "paper",
        "Tp_ideal (s)",
        "paper",
        "Ov_cont %",
        "paper %",
    ]
    return rows, render_table(headers, rows, title="Table 4: GM and Network Contention Overhead")


# -- Figure 3: completion-time breakdown -------------------------------------------


def figure3(results: dict[str, dict[int, RunResult]]) -> tuple[list[list], str]:
    """Reproduce Figure 3: CT breakdown per configuration (main cluster)."""
    rows: list[list] = []
    for app, by_config in results.items():
        for n_proc, result in sorted(by_config.items()):
            breakdown = ct_breakdown(result, cluster_id=0)
            ct = result.ct_ns
            rows.append(
                [
                    app,
                    n_proc,
                    breakdown[TimeCategory.USER] / ct * 100.0,
                    breakdown[TimeCategory.SYSTEM] / ct * 100.0,
                    breakdown[TimeCategory.INTERRUPT] / ct * 100.0,
                    breakdown[TimeCategory.KSPIN] / ct * 100.0,
                ]
            )
    headers = ["app", "procs", "user %", "system %", "interrupt %", "kspin %"]
    return rows, render_table(
        headers, rows, title="Figure 3: Completion Time Breakdown (main cluster)"
    )


# -- Figures 5-9: user-time breakdown ------------------------------------------------


def figure_user_breakdown(
    app: str, by_config: dict[int, RunResult]
) -> tuple[list[list], str]:
    """Reproduce one of Figures 5-9 for one application.

    Rows are (config, task) pairs with each component as a percentage
    of the task's total execution time; single-cluster configurations
    report the main task only, like the paper.
    """
    rows: list[list] = []
    for n_proc, result in sorted(by_config.items()):
        for task_id in range(result.config.n_clusters):
            b = user_breakdown(result, task_id)
            name = "Main" if task_id == 0 else f"helper{task_id}"
            rows.append(
                [
                    n_proc,
                    name,
                    b.fraction(b.serial_ns) * 100.0,
                    b.fraction(b.mc_loop_ns) * 100.0,
                    b.fraction(b.iter_sdoall_ns) * 100.0,
                    b.fraction(b.iter_xdoall_ns) * 100.0,
                    b.fraction(b.setup_ns) * 100.0,
                    b.fraction(b.pickup_sdoall_ns) * 100.0,
                    b.fraction(b.pickup_xdoall_ns) * 100.0,
                    b.fraction(b.barrier_ns) * 100.0,
                    b.fraction(b.helper_wait_ns) * 100.0,
                    b.overhead_fraction * 100.0,
                ]
            )
    headers = [
        "procs",
        "task",
        "serial%",
        "mc%",
        "sdo iter%",
        "xdo iter%",
        "setup%",
        "sdo pick%",
        "xdo pick%",
        "barrier%",
        "hlp wait%",
        "par ovhd%",
    ]
    return rows, render_table(headers, rows, title=f"User Time Breakdown for {app}")
