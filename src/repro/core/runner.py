"""Experiment runner: execute an application model on a configuration.

Assembles the full stack -- simulator, machine, Xylem kernel, cedarhpm
monitor, activity board, statfx sampler, runtime library -- runs the
program in a dedicated single-user setting (only the target application
and the OS, as in the paper), and returns a :class:`RunResult` carrying
everything the analysis modules need.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.apps.base import AppModel
from repro.hardware.config import CedarConfig, paper_configuration
from repro.hardware.machine import CedarMachine
from repro.hpm.activity import ActivityBoard
from repro.hpm.events import TraceEvent
from repro.hpm.monitor import CedarHpm
from repro.hpm.statfx import Statfx
from repro.obs.hostclock import WallTimer
from repro.runtime.library import CedarFortranRuntime
from repro.runtime.loops import Phase
from repro.runtime.params import RuntimeParams
from repro.sim import Simulator
from repro.xylem.accounting import TimeAccounting
from repro.xylem.kernel import XylemKernel
from repro.xylem.params import XylemParams
from repro.xylem.vm import FaultStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.instrument import Observability

__all__ = ["PreRunHook", "RunResult", "run_application", "run_phases"]

#: Callback invoked after the stack is assembled, before the event loop
#: starts; used by ``repro.faults`` to arm fault-injection processes.
PreRunHook = Callable[
    [Simulator, CedarMachine, XylemKernel, CedarFortranRuntime], None
]

#: Default workload scale: 1/50 of the full-scale step counts keeps a
#: five-application, five-configuration sweep in the tens of seconds.
DEFAULT_SCALE = 0.02


@dataclass
class RunResult:
    """Everything measured during one application run."""

    app_name: str
    config: CedarConfig
    scale: float
    #: Multiplier from simulated totals to full-scale totals.
    extrapolation: float
    #: Simulated completion time in nanoseconds (not extrapolated).
    ct_ns: int
    #: The off-loaded cedarhpm trace buffer.
    events: list[TraceEvent]
    accounting: TimeAccounting
    fault_stats: FaultStats
    statfx: Statfx
    board: ActivityBoard
    machine: CedarMachine
    kernel: XylemKernel
    runtime: CedarFortranRuntime
    #: The cedarhpm monitor itself (buffer capacity, drop counts).
    hpm: CedarHpm | None = None
    #: Host wall-clock seconds spent inside the event loop.
    wall_s: float = 0.0
    #: Domain-tagged BLAKE2 digest of the processed-event order, filled
    #: in by the ``repro.parallel`` executor (``None`` for plain runs).
    #: Compare with :func:`repro.analyze.same_schedule`, never ``==``
    #: across recordings: the ``cedar-repro/schedule/vN`` prefix
    #: versions the event-stream definition.
    schedule_hash: str | None = None
    #: Kernel fast-path counters harvested at end of run: Timeout-pool
    #: reuse (``pool.*``), the batched/exact memory transaction split
    #: (``fastpath.*``), the runtime/OS-layer fast-path activity
    #: (``runtime.fastpath.*`` / ``xylem.fastpath.*``) and the compiled
    #: dispatch loop (``pool.compiled_steps``).  Keys match the
    #: ``kernel.*`` metric suffixes emitted by
    #: :mod:`repro.obs.instrument`.
    kernel_stats: dict = field(default_factory=dict)
    #: Which execution mode each acceleration layer ran in:
    #: ``memory`` / ``runtime`` / ``xylem`` are ``"batched"`` or
    #: ``"exact"``, ``statfx`` is ``"push"`` or ``"exact"``, and
    #: ``loop`` is ``"compiled"`` or ``"pure"``.  Every mode produces
    #: bit-identical results by construction; the record exists so run
    #: reports and regression triage can see which paths were active.
    fastpath_modes: dict = field(default_factory=dict)

    #: Lazily-filled cache used by the analysis helpers.
    _cache: dict = field(default_factory=dict, repr=False)

    @property
    def n_processors(self) -> int:
        """Processors in the configuration."""
        return self.config.n_processors

    @property
    def ct_seconds(self) -> float:
        """Extrapolated full-scale completion time in seconds."""
        return self.ct_ns * self.extrapolation / 1e9

    def seconds(self, ns: float) -> float:
        """Extrapolate a simulated nanosecond quantity to full-scale seconds."""
        return ns * self.extrapolation / 1e9

    def fraction_of_ct(self, ns: float) -> float:
        """Express a simulated nanosecond quantity as a fraction of CT."""
        if self.ct_ns == 0:
            return 0.0
        return ns / self.ct_ns

    def portable(self) -> "RunResult":
        """A detached, picklable copy of this result.

        Convenience wrapper over
        :func:`repro.parallel.snapshot.snapshot_result`: the copy can
        cross a process boundary or live in the on-disk result cache,
        and answers every analysis/metrics query identically.
        """
        from repro.parallel.snapshot import snapshot_result

        return snapshot_result(self)


def run_phases(
    phases: list[Phase],
    n_processors: int,
    app_name: str = "custom",
    scale: float = 1.0,
    extrapolation: float = 1.0,
    config: CedarConfig | None = None,
    os_params: XylemParams | None = None,
    rt_params: RuntimeParams | None = None,
    statfx_interval_ns: int = 200_000,
    obs: "Observability | None" = None,
    pre_run_hook: PreRunHook | None = None,
    max_events: int | None = None,
    max_sim_time: int | None = None,
    tie_break_seed: int | None = None,
) -> RunResult:
    """Run an explicit phase list on a configuration (low-level entry).

    Pass an :class:`~repro.obs.instrument.Observability` as *obs* to
    attach kernel trace sinks for the run and have its metrics registry
    populated from the result.  With ``obs=None`` (the default) the
    event loop stays on its sink-free fast path.

    *pre_run_hook* is called with the assembled ``(sim, machine,
    kernel, runtime)`` before the event loop starts -- the seam
    ``repro.faults`` uses to arm injection processes.  *max_events* /
    *max_sim_time* are forwarded to :meth:`Simulator.run` as a runaway
    watchdog.

    *tie_break_seed* arms the kernel's tie-break perturbation mode
    (:meth:`Simulator.perturb_tie_breaks`) before the stack is
    assembled: same-instant event order is permuted by the seed, and a
    hazard-free model must produce byte-identical results for every
    seed.  Used by the ``cedar-repro race`` sanitizer.
    """
    sim = Simulator(trace_sink=obs.sink if obs is not None else None)
    if tie_break_seed is not None:
        sim.perturb_tie_breaks(tie_break_seed)
    cfg = config if config is not None else paper_configuration(n_processors)
    machine = CedarMachine(sim, cfg)
    hpm = CedarHpm(sim)
    board = ActivityBoard(sim, cfg)
    statfx = Statfx(sim, board, interval_ns=statfx_interval_ns)
    statfx.start()
    kernel = XylemKernel(sim, cfg, os_params or XylemParams(), hpm=hpm)
    runtime = CedarFortranRuntime(
        sim, machine, kernel, hpm=hpm, board=board, params=rt_params
    )
    if pre_run_hook is not None:
        pre_run_hook(sim, machine, kernel, runtime)
    main = runtime.run_program(phases)
    # Host timing is routed through repro.obs.hostclock (CDR001): wall
    # time is reported beside the simulated clock, never mixed into it.
    with WallTimer() as wall:
        ct_ns = sim.run(until=main, max_events=max_events, max_sim_time=max_sim_time)
    result = RunResult(
        app_name=app_name,
        config=cfg,
        scale=scale,
        extrapolation=extrapolation,
        ct_ns=ct_ns,
        events=hpm.offload(),
        accounting=kernel.accounting,
        fault_stats=kernel.vm.stats,
        statfx=statfx,
        board=board,
        machine=machine,
        kernel=kernel,
        runtime=runtime,
        hpm=hpm,
        wall_s=wall.elapsed_s,
        kernel_stats=_harvest_kernel_stats(sim, machine, kernel, runtime),
        fastpath_modes=_fastpath_modes(sim, machine, kernel, runtime, statfx),
    )
    if obs is not None:
        obs.collect(result)
    return result


def _harvest_kernel_stats(
    sim: Simulator,
    machine: CedarMachine,
    kernel: XylemKernel,
    runtime: CedarFortranRuntime,
) -> dict:
    """Kernel fast-path counters for ``RunResult.kernel_stats``."""
    stats = {
        "pool.timeouts_created": sim.timeouts_created,
        "pool.timeouts_reused": sim.timeouts_reused,
        "pool.ticks_rearmed": sim.ticks_rearmed,
        "pool.compiled_steps": sim.compiled_steps,
    }
    memory = machine._memory
    if memory is not None:
        fp = memory.fastpath.stats
        stats.update(
            {
                "fastpath.batched_transactions": fp.batched_transactions,
                "fastpath.exact_transactions": fp.exact_transactions,
                "fastpath.batched_words": fp.batched_words,
                "fastpath.exact_words": fp.exact_words,
                "fastpath.fallback_fault": fp.fallback_fault,
                "fastpath.fallback_saturation": fp.fallback_saturation,
                "fastpath.batched_fraction": fp.batched_fraction,
            }
        )
    rfp = runtime.fastpath.stats
    stats.update(
        {
            "runtime.fastpath.lean_pickups": rfp.lean_pickups,
            "runtime.fastpath.exact_pickups": rfp.exact_pickups,
            "runtime.fastpath.lean_barrier_detaches": rfp.lean_barrier_detaches,
            "runtime.fastpath.exact_barrier_detaches": rfp.exact_barrier_detaches,
            "runtime.fastpath.fused_spawns": rfp.fused_spawns,
            "runtime.fastpath.lean_fraction": rfp.lean_fraction,
        }
    )
    xfp = kernel.fastpath.stats
    stats.update(
        {
            "xylem.fastpath.fused_spawns": xfp.fused_spawns,
            "xylem.fastpath.warm_elisions": xfp.warm_elisions,
            "xylem.fastpath.exact_spawns": xfp.exact_spawns,
        }
    )
    return stats


def _fastpath_modes(
    sim: Simulator,
    machine: CedarMachine,
    kernel: XylemKernel,
    runtime: CedarFortranRuntime,
    statfx: Statfx,
) -> dict:
    """Which mode each acceleration layer ran in (``RunResult.fastpath_modes``)."""
    from repro.sim.core import compiled_loop_active
    from repro.sim.policy import compiled_policy

    memory = machine._memory
    return {
        "memory": memory.fastpath.mode if memory is not None else "exact",
        "runtime": runtime.fastpath.mode,
        "xylem": kernel.fastpath.mode,
        "statfx": statfx.mode or "exact",
        "loop": (
            "compiled"
            if compiled_loop_active()
            and compiled_policy()
            and not sim.tie_perturbed
            and sim._sink is None
            else "pure"
        ),
    }


def run_application(
    app: AppModel,
    n_processors: int,
    scale: float = DEFAULT_SCALE,
    config: CedarConfig | None = None,
    os_params: XylemParams | None = None,
    rt_params: RuntimeParams | None = None,
    statfx_interval_ns: int = 200_000,
    obs: "Observability | None" = None,
    pre_run_hook: PreRunHook | None = None,
    max_events: int | None = None,
    max_sim_time: int | None = None,
    tie_break_seed: int | None = None,
) -> RunResult:
    """Run an application model at *scale* on a paper configuration.

    This is the main public entry point of the reproduction::

        from repro.apps import flo52
        from repro.core import run_application

        result = run_application(flo52(), n_processors=32, scale=0.02)
        print(result.ct_seconds)
    """
    phases = app.phases(scale)
    return run_phases(
        phases,
        n_processors,
        app_name=app.name,
        scale=scale,
        extrapolation=app.extrapolation(scale),
        config=config,
        os_params=os_params,
        rt_params=rt_params,
        statfx_interval_ns=statfx_interval_ns,
        obs=obs,
        pre_run_hook=pre_run_hook,
        max_events=max_events,
        max_sim_time=max_sim_time,
        tie_break_seed=tie_break_seed,
    )
