"""Detached, picklable snapshots of finished runs.

A live :class:`~repro.core.runner.RunResult` drags the whole simulation
stack behind it -- the simulator (with generator frames), the machine,
the Xylem kernel -- none of which can cross a process boundary or be
written to the result cache.  :func:`snapshot_result` rebuilds the same
``RunResult`` shape out of small frozen *view* objects that quack
exactly like the live classes for everything the analysis layer and the
``repro.obs`` metric collectors read after a run:

* ``result.accounting`` / ``result.fault_stats`` / ``result.events`` --
  plain data, deep-copied verbatim;
* ``result.statfx`` / ``result.board`` -- concurrency queries answered
  from values frozen at end-of-run simulated time;
* ``result.machine`` -- the memory ledger, the streaming-load tracker,
  the per-cluster CC buses and (when the packet-level memory system
  ran) the bank/switch statistics;
* ``result.kernel`` -- OS parameters, critical-section lock counters
  and the VM fault counters;
* ``result.runtime`` / ``result.hpm`` -- protocol counters and monitor
  buffer state.

The contract -- enforced by ``tests/parallel/test_snapshot.py`` -- is
that every table/figure function and :func:`repro.obs.instrument.
collect_run_metrics` produce identical output from the snapshot and
from the live result.

The same contract is what makes campaign telemetry free of side
channels: a pool worker collects its metrics from the *snapshot*-bound
``Observability`` registry and ships them inside a
:class:`~repro.obs.campaign.CellSpan` *beside* the result, so the
snapshot the coordinator caches and tabulates is byte-identical whether
telemetry was on or off.  ``wall_s``, ``schedule_hash``,
``kernel_stats`` and ``fastpath_modes`` ride on the snapshot itself;
the first three are the only fields the span reads back out of it.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.runner import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hpm.events import TraceEvent
    from repro.xylem.locks import KernelLock
    from repro.xylem.params import XylemParams

__all__ = ["snapshot_result", "is_snapshot"]


@dataclass(frozen=True)
class StatfxView:
    """Frozen answers to the sampler's post-run concurrency queries."""

    samples: int
    sums: tuple[int, ...]
    interval_ns: int

    def cluster_concurrency(self, cluster_id: int) -> float:
        """Sampled average concurrency on one cluster."""
        if self.samples == 0:
            return 0.0
        return self.sums[cluster_id] / self.samples

    def total_concurrency(self) -> float:
        """Sum of per-cluster average concurrencies (the paper's value)."""
        return sum(self.cluster_concurrency(c) for c in range(len(self.sums)))


@dataclass(frozen=True)
class BoardView:
    """Frozen activity-board state at end-of-run simulated time."""

    busy: tuple[int, ...]
    now_ns: int
    ces_per_cluster: int

    def busy_ns(self, ce_id: int) -> int:
        """Total active time of a CE over the run."""
        return self.busy[ce_id]

    def mean_concurrency(self, cluster_id: int | None = None) -> float:
        """Exact time-weighted average active-CE count."""
        if self.now_ns == 0:
            return 0.0
        if cluster_id is None:
            total = sum(self.busy)
        else:
            per = self.ces_per_cluster
            total = sum(self.busy[cluster_id * per : (cluster_id + 1) * per])
        return total / self.now_ns


@dataclass(frozen=True)
class LoadView:
    """Frozen streaming-CE load-tracker statistics."""

    high_water: int
    cluster_high_water: tuple[int, ...]
    weighted_mean: float

    def time_weighted_mean(self) -> float:
        """Average number of streaming CEs over the run."""
        return self.weighted_mean


@dataclass(frozen=True)
class CCBusView:
    """Frozen per-cluster concurrency-control bus counters."""

    dispatches: int
    synchronisations: int


@dataclass(frozen=True)
class ClusterView:
    """One cluster's post-run counters (currently just the CC bus)."""

    cluster_id: int
    ccbus: CCBusView


@dataclass(frozen=True)
class NetDirectionView:
    """One direction of the packet network: its stats object only."""

    stats: object  # NetworkStats dataclass (plain, picklable)


@dataclass(frozen=True)
class PacketMemoryView:
    """Frozen packet-level global-memory statistics."""

    stats: object  # MemoryStats dataclass
    bank_busy_ns: tuple[int, ...]
    bank_requests: tuple[int, ...]
    bank_queue_high_water: tuple[int, ...]
    forward: NetDirectionView
    backward: NetDirectionView


@dataclass(frozen=True)
class MachineView:
    """Stand-in for :class:`~repro.hardware.machine.CedarMachine`."""

    mem_ledger: object  # MemoryLedger (plain slots, picklable)
    load: LoadView
    clusters: tuple[ClusterView, ...]
    _memory: PacketMemoryView | None = None


@dataclass(frozen=True)
class LockView:
    """Frozen kernel-lock acquisition counters."""

    name: str
    acquisitions: int
    contended_acquisitions: int


@dataclass(frozen=True)
class CriticalSectionsView:
    """Frozen critical-section lock counters."""

    global_lock: LockView
    cluster_locks: tuple[LockView, ...]
    hold_factor: float


@dataclass(frozen=True)
class VmView:
    """Stand-in for the kernel's VM subsystem (fault counters only)."""

    stats: object  # FaultStats


@dataclass(frozen=True)
class KernelView:
    """Stand-in for :class:`~repro.xylem.kernel.XylemKernel`."""

    params: "XylemParams"
    critical_sections: CriticalSectionsView
    accounting: object  # the same TimeAccounting copy the result holds
    vm: VmView


@dataclass(frozen=True)
class RuntimeView:
    """Stand-in for the Fortran runtime (protocol counters only)."""

    stats: object  # RuntimeStats


@dataclass
class HpmView:
    """Stand-in for the cedarhpm monitor's post-run buffer state."""

    dropped: int
    buffer_capacity: int | None
    resolution_ns: int
    events: list = field(default_factory=list, repr=False)

    def offload(self) -> "list[TraceEvent]":
        """The retained event buffer (already off-loaded at snapshot)."""
        return self.events


def _lock_view(lock: KernelLock) -> LockView:
    return LockView(
        name=lock.name,
        acquisitions=lock.acquisitions,
        contended_acquisitions=lock.contended_acquisitions,
    )


def _machine_view(result: RunResult) -> MachineView:
    machine = result.machine
    load = machine.load
    packet = None
    raw = machine._memory
    if raw is not None:
        packet = PacketMemoryView(
            stats=copy.deepcopy(raw.stats),
            bank_busy_ns=tuple(raw.bank_busy_ns),
            bank_requests=tuple(raw.bank_requests),
            bank_queue_high_water=tuple(raw.bank_queue_high_water),
            forward=NetDirectionView(stats=copy.deepcopy(raw.forward.stats)),
            backward=NetDirectionView(stats=copy.deepcopy(raw.backward.stats)),
        )
    return MachineView(
        mem_ledger=copy.deepcopy(machine.mem_ledger),
        load=LoadView(
            high_water=load.high_water,
            cluster_high_water=tuple(load.cluster_high_water),
            weighted_mean=load.time_weighted_mean(),
        ),
        clusters=tuple(
            ClusterView(
                cluster_id=cluster.cluster_id,
                ccbus=CCBusView(
                    dispatches=cluster.ccbus.dispatches,
                    synchronisations=cluster.ccbus.synchronisations,
                ),
            )
            for cluster in machine.clusters
        ),
        _memory=packet,
    )


def is_snapshot(result: RunResult) -> bool:
    """Whether *result* is a detached snapshot rather than a live run."""
    return isinstance(result.machine, MachineView)


def snapshot_result(result: RunResult) -> RunResult:
    """Detach *result* from the live simulation stack.

    Returns a new :class:`RunResult` carrying only plain data and view
    objects: safe to pickle across a process pool, store in the result
    cache, and feed to every table/figure/metrics consumer.
    Snapshotting a snapshot returns it unchanged.
    """
    if is_snapshot(result):
        return result
    accounting = copy.deepcopy(result.accounting)
    fault_stats = copy.deepcopy(result.fault_stats)
    sections = result.kernel.critical_sections
    statfx = result.statfx
    board = result.board
    events = list(result.events)
    hpm = result.hpm
    return RunResult(
        app_name=result.app_name,
        config=result.config,
        scale=result.scale,
        extrapolation=result.extrapolation,
        ct_ns=result.ct_ns,
        events=events,
        accounting=accounting,
        fault_stats=fault_stats,
        statfx=StatfxView(
            samples=statfx.samples,
            sums=tuple(statfx._sums),
            interval_ns=statfx.interval_ns,
        ),
        board=BoardView(
            busy=tuple(
                board.busy_ns(ce) for ce in range(result.config.n_processors)
            ),
            now_ns=board.sim.now,
            ces_per_cluster=result.config.ces_per_cluster,
        ),
        machine=_machine_view(result),
        kernel=KernelView(
            params=result.kernel.params,
            critical_sections=CriticalSectionsView(
                global_lock=_lock_view(sections.global_lock),
                cluster_locks=tuple(
                    _lock_view(lock) for lock in sections.cluster_locks
                ),
                hold_factor=sections.hold_factor,
            ),
            accounting=accounting,
            vm=VmView(stats=fault_stats),
        ),
        runtime=RuntimeView(stats=copy.deepcopy(result.runtime.stats)),
        hpm=HpmView(
            dropped=hpm.dropped,
            buffer_capacity=hpm.buffer_capacity,
            resolution_ns=hpm.resolution_ns,
            events=events,
        )
        if hpm is not None
        else None,
        wall_s=result.wall_s,
        schedule_hash=result.schedule_hash,
        kernel_stats=dict(result.kernel_stats),
        fastpath_modes=dict(result.fastpath_modes),
    )
