"""Write-ahead journal for crash-safe campaign execution.

A campaign that dies -- a killed coordinator, a full disk, an operator
^C -- must be resumable without re-running completed cells and without
any doubt about *which* code produced the partial results.  The journal
is an append-only JSONL file (schema ``cedar-repro/journal/v1``):

* the **header** carries :func:`~repro.parallel.cache.code_fingerprint`,
  the seed, the sweep grid and the cache directory, so a resume can
  reconstruct the campaign and refuse to mix code versions;
* every cell's spec and BLAKE2 cell key are journaled **before** any
  dispatch (the write-ahead part: the full intent is on disk before any
  work starts);
* completions append ``done`` records carrying the result's payload
  digest; exhausted cells append ``failed`` records; recovery events
  (respawns, speculation, checkpoints) append breadcrumbs.

Appends are single ``write()`` calls on an ``O_APPEND`` descriptor,
flushed and fsynced, so a crash can tear at most the final line --
:func:`load_journal` tolerates exactly that (a trailing line that does
not parse is dropped; anything torn earlier is corruption and raises).

Resume semantics live in :mod:`repro.parallel.durable`: completed cells
are *served from the result cache* (the ``done`` record is the index,
the cache envelope is the data -- each verifies independently), and a
journal whose header fingerprint does not match the running code is
refused (:class:`JournalMismatchError`), because resuming across a
model change could silently mix results from two different machines.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Any

from repro.parallel.cache import code_fingerprint
from repro.parallel.executor import CellSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.resilience import CellFailure
    from repro.core.runner import RunResult

__all__ = [
    "JOURNAL_SCHEMA",
    "CampaignJournal",
    "JournalError",
    "JournalMismatchError",
    "JournalState",
    "load_journal",
    "spec_from_dict",
    "spec_to_dict",
]

JOURNAL_SCHEMA = "cedar-repro/journal/v1"


class JournalError(ValueError):
    """A journal file is missing, malformed, or torn beyond the tail."""


class JournalMismatchError(JournalError):
    """Resume refused: the journal was written by different code.

    Results computed by one version of the model must never be mixed
    with results computed by another -- the cache would refuse to serve
    them anyway (the fingerprint is part of every cell key), so a
    "resume" would silently re-run everything while *claiming* to
    continue the original campaign.  Refusing loudly is the only honest
    behaviour.
    """


def spec_to_dict(spec: CellSpec) -> dict:
    """JSON form of a :class:`~repro.parallel.executor.CellSpec`."""
    return {
        "app": spec.app,
        "n_processors": spec.n_processors,
        "scale": spec.scale,
        "seed": spec.seed,
        "campaign": spec.campaign.to_dict() if spec.campaign is not None else None,
        "statfx_interval_ns": spec.statfx_interval_ns,
        "max_events": spec.max_events,
        "max_sim_time": spec.max_sim_time,
        "fingerprint_schedule": spec.fingerprint_schedule,
        "scenario": spec.scenario,
    }


def spec_from_dict(data: dict) -> CellSpec:
    """Rebuild a :class:`CellSpec` from :func:`spec_to_dict` output."""
    from repro.faults.spec import CampaignSpec

    campaign = data.get("campaign")
    return CellSpec(
        app=str(data["app"]),
        n_processors=int(data["n_processors"]),
        scale=float(data["scale"]),
        seed=int(data["seed"]),
        campaign=CampaignSpec.from_dict(campaign) if campaign is not None else None,
        statfx_interval_ns=int(data.get("statfx_interval_ns", 200_000)),
        max_events=data.get("max_events"),
        max_sim_time=data.get("max_sim_time"),
        fingerprint_schedule=bool(data.get("fingerprint_schedule", True)),
        scenario=data.get("scenario"),
    )


class CampaignJournal:
    """Append-side handle on one campaign's write-ahead journal.

    Create with :meth:`create` (writes the header and every cell record
    up front) or :meth:`append_to` (re-opens an existing journal for a
    resume leg).  Every record lands with one atomic append + fsync, so
    the journal is valid after a crash at any instant.
    """

    def __init__(self, path: Path, fh: "IO[str]") -> None:
        self.path = path
        self._fh: "IO[str] | None" = fh

    @classmethod
    def create(
        cls,
        path: str | Path,
        specs: "list[CellSpec]",
        seed: int | None = None,
        label: str = "campaign",
        cache_dir: "str | Path | None" = None,
        sweep: "dict | None" = None,
    ) -> "CampaignJournal":
        """Start a fresh journal: header + one ``cell`` record per spec.

        *sweep* optionally records the grid (``apps``/``configs``/
        ``scale``/``seed``) so ``cedar-repro resume`` can rebuild the
        outcome tables; *cache_dir* records where completed results
        live.  Refuses to overwrite an existing journal.
        """
        path = Path(path)
        if path.exists():
            raise JournalError(
                f"journal {path} already exists; resume it or remove it"
            )
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        journal = cls(path, os.fdopen(fd, "w", encoding="utf-8"))
        seeds = {spec.seed for spec in specs}
        journal.append(
            {
                "schema": JOURNAL_SCHEMA,
                "label": label,
                "code_fingerprint": code_fingerprint(),
                "seed": seed if seed is not None else (
                    seeds.pop() if len(seeds) == 1 else None
                ),
                "n_cells": len(specs),
                "cache_dir": str(cache_dir) if cache_dir is not None else None,
                "sweep": sweep,
            }
        )
        for spec in specs:
            journal.append(
                {"ev": "cell", "key": spec.key(), "spec": spec_to_dict(spec)}
            )
        return journal

    @classmethod
    def append_to(cls, path: str | Path) -> "CampaignJournal":
        """Re-open an existing journal for appending (the resume leg)."""
        path = Path(path)
        if not path.exists():
            raise JournalError(f"journal {path} does not exist")
        fd = os.open(path, os.O_WRONLY | os.O_APPEND)
        return cls(path, os.fdopen(fd, "w", encoding="utf-8"))

    def append(self, payload: dict) -> None:
        """Atomically append one record (single write + flush + fsync)."""
        if self._fh is None:
            raise JournalError(f"journal {self.path} is closed")
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record_dispatch(self, spec: CellSpec, attempt: int) -> None:
        """Breadcrumb: a cell attempt was handed to the pool."""
        self.append({"ev": "dispatch", "key": spec.key(), "attempt": attempt})

    def record_done(self, spec: CellSpec, result: "RunResult") -> None:
        """A cell completed; its result is in the cache under its key."""
        import hashlib
        import pickle

        digest = hashlib.blake2b(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL), digest_size=16
        ).hexdigest()
        self.append(
            {
                "ev": "done",
                "key": spec.key(),
                "digest": digest,
                "ct_ns": result.ct_ns,
                "schedule_hash": result.schedule_hash,
            }
        )

    def record_failed(self, spec: CellSpec, failure: "CellFailure") -> None:
        """A cell exhausted its attempts; resume will retry it afresh."""
        self.append(
            {
                "ev": "failed",
                "key": spec.key(),
                "error_type": failure.error_type,
                "message": failure.message,
                "attempts": failure.attempts,
            }
        )

    def record_checkpoint(self, reason: str) -> None:
        """The campaign was interrupted cleanly; the journal is resumable."""
        self.append({"ev": "checkpoint", "reason": reason})

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass
class JournalState:
    """Everything :func:`load_journal` recovered from a journal file."""

    path: Path
    header: dict
    #: Cell specs in journal (= input) order.
    specs: "list[CellSpec]" = field(default_factory=list)
    #: Keys with a ``done`` record (result expected in the cache).
    done: "dict[str, dict]" = field(default_factory=dict)
    #: Keys whose last terminal record was ``failed``.
    failed: "dict[str, dict]" = field(default_factory=dict)
    #: Non-cell breadcrumbs (dispatch/checkpoint/recovery events).
    events: "list[dict]" = field(default_factory=list)
    #: Whether the final parsed line was a clean ``checkpoint``.
    checkpointed: bool = False

    @property
    def label(self) -> str:
        """The campaign label the journal was opened under."""
        return str(self.header.get("label", "campaign"))

    @property
    def cache_dir(self) -> "Path | None":
        """The result-cache directory recorded in the header."""
        raw = self.header.get("cache_dir")
        return Path(raw) if raw else None

    def incomplete(self) -> "list[CellSpec]":
        """The cells still owing a result, in journal order."""
        return [spec for spec in self.specs if spec.key() not in self.done]

    def check_fingerprint(self) -> None:
        """Refuse to resume across a code-fingerprint mismatch."""
        recorded = self.header.get("code_fingerprint")
        current = code_fingerprint()
        if recorded != current:
            raise JournalMismatchError(
                f"journal {self.path} was written by code {recorded}, but the "
                f"running code fingerprints as {current}; results must not be "
                f"mixed across versions -- re-run the campaign instead"
            )


def load_journal(path: str | Path) -> JournalState:
    """Parse a journal file into a :class:`JournalState`.

    A torn *final* line (crash mid-append) is dropped silently; a
    malformed line anywhere earlier raises :class:`JournalError`.  A
    ``failed`` cell that later gained a ``done`` record (a resume leg
    succeeded) counts as done.
    """
    path = Path(path)
    try:
        raw_lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    records: list[dict] = []
    for index, line in enumerate(raw_lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if index == len(raw_lines) - 1:
                break  # torn tail from a crash mid-append: tolerated
            raise JournalError(
                f"journal {path} line {index + 1} is corrupt: {exc}"
            ) from exc
    if not records:
        raise JournalError(f"journal {path} is empty")
    header = records[0]
    if header.get("schema") != JOURNAL_SCHEMA:
        raise JournalError(
            f"not a journal: expected schema {JOURNAL_SCHEMA!r}, "
            f"got {header.get('schema')!r}"
        )
    state = JournalState(path=path, header=header)
    for record in records[1:]:
        ev = record.get("ev")
        if ev == "cell":
            try:
                state.specs.append(spec_from_dict(record["spec"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise JournalError(
                    f"journal {path} carries an unreadable cell spec: {exc}"
                ) from exc
        elif ev == "done":
            state.done[str(record["key"])] = record
            state.failed.pop(str(record["key"]), None)
        elif ev == "failed":
            state.failed[str(record["key"])] = record
        else:
            state.events.append(record)
    state.checkpointed = bool(records) and records[-1].get("ev") == "checkpoint"
    return state
