"""Crash-safe campaign execution: journal, health, speculation, resume.

:func:`~repro.parallel.executor.execute_cells` assumes the host behaves;
this layer assumes it does not.  It wraps the same worker entry point
(:func:`~repro.parallel.executor._worker` -- serial and pooled cells
stay byte-identical) in the machinery long-running measurement
campaigns actually need:

* **Write-ahead journal + resume** -- every cell's spec and key are
  journaled before any dispatch (:mod:`repro.parallel.journal`);
  completions land in the content-addressed
  :class:`~repro.parallel.cache.ResultCache` and are indexed by
  ``done`` records, so a resumed campaign re-runs only incomplete cells
  and refuses to mix code versions.
* **Worker health + self-healing pools** -- workers heartbeat through
  per-PID files; the coordinator detects dead workers (broken pool),
  stalled workers (stale heartbeats) and over-deadline cells, SIGKILLs
  the offenders, respawns the pool and reschedules the affected cells
  with deterministic exponential backoff (:func:`backoff_s`: jitter-free
  by construction, so retry schedules are reproducible).
* **Straggler detection + speculative re-dispatch** -- cells running
  past a rolling-p95-based threshold are re-dispatched on a free slot;
  the simulation is seed-deterministic, so first-result-wins is safe
  and the duplicate is cancelled (or its late result discarded) and
  counted.
* **Graceful degradation** -- SIGINT/SIGTERM checkpoint the journal and
  raise :class:`CampaignInterrupted`; cache I/O trouble degrades to
  cache-off (:mod:`repro.parallel.cache`) instead of aborting.

Everything the layer does to *recover* is narrated through the campaign
telemetry seam (``recovery`` events in the JSONL log, ``campaign.
recovery.*`` counters) and totalled in a :class:`RecoveryLedger`, which
renders the ``cedar-repro/recovery-report/v1`` JSON.  The recovered
campaign's tables are byte-identical to an uninterrupted run: that is
the acceptance gate ``scripts/chaos_sweep.py`` enforces.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from pathlib import Path
from types import FrameType
from typing import TYPE_CHECKING, Mapping

from repro.core.resilience import CellFailure, SweepOutcome
from repro.core.runner import DEFAULT_SCALE
from repro.obs.campaign import CellSpan, percentile
from repro.obs.hostclock import WallTimer, host_clock_s
from repro.parallel.cache import ResultCache, code_fingerprint
from repro.parallel.executor import CellSpec, _observe, _worker
from repro.parallel.journal import (
    CampaignJournal,
    JournalError,
    load_journal,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable, Sequence

    from repro.core.runner import RunResult
    from repro.faults.host import HostChaosPlan, HostFault
    from repro.faults.spec import CampaignSpec
    from repro.obs.campaign import CampaignTelemetry
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "RECOVERY_REPORT_SCHEMA",
    "CampaignInterrupted",
    "DurablePolicy",
    "RecoveryLedger",
    "backoff_s",
    "durable_execute_cells",
    "durable_sweep",
    "resume_sweep",
    "save_recovery_report",
    "stale_workers",
]

RECOVERY_REPORT_SCHEMA = "cedar-repro/recovery-report/v1"

#: Rolling window of completed cell walls for the straggler threshold.
_STRAGGLER_WINDOW = 64


class CampaignInterrupted(RuntimeError):
    """The campaign was checkpointed by SIGINT/SIGTERM and can resume.

    Carries the journal path so the CLI can print the exact resume
    command.  Raised *after* the journal checkpoint record, the
    campaign log and the telemetry registry are all flushed -- nothing
    about the interrupt is lossy except the in-flight cells, which the
    resume leg re-runs.
    """

    def __init__(self, journal_path: Path, reason: str) -> None:
        super().__init__(
            f"campaign checkpointed on {reason}; resume with: "
            f"cedar-repro resume {journal_path}"
        )
        self.journal_path = journal_path
        self.reason = reason


def backoff_s(attempt: int, base_s: float, cap_s: float) -> float:
    """Deterministic exponential backoff before retry *attempt*.

    ``base * 2**(attempt-1)`` capped at *cap_s*, with **no jitter**:
    two campaigns that fail the same way wait the same way, so retry
    schedules are as reproducible as the simulations they pace
    (jitter's usual job -- decorrelating contending clients -- does not
    apply to a single coordinator).
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    return min(cap_s, base_s * (2.0 ** (attempt - 1)))


@dataclass(frozen=True)
class DurablePolicy:
    """Tunables for the health monitor, retries and speculation."""

    #: Worker heartbeat cadence (seconds between beats).
    heartbeat_interval_s: float = 0.25
    #: A worker whose last beat is older than this is presumed stalled
    #: and is SIGKILLed (the pool respawns).
    heartbeat_timeout_s: float = 30.0
    #: Wall budget per cell attempt, measured from dispatch; ``None``
    #: disables the deadline (the default: cells can be legitimately
    #: huge).  An over-deadline attempt is killed and retried.
    cell_deadline_s: float | None = None
    #: Exponential backoff parameters for host-failure retries.
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 4.0
    #: Whether to speculatively re-dispatch stragglers.
    speculate: bool = True
    #: Minimum completed samples before a straggler threshold exists.
    straggler_min_samples: int = 3
    #: Speculate when a cell's age exceeds ``factor * rolling_p95``...
    straggler_factor: float = 3.0
    #: ...but never below this floor (tiny cells jitter relatively).
    straggler_floor_s: float = 1.0
    #: Coordinator poll cadence.
    poll_interval_s: float = 0.05


@dataclass
class RecoveryLedger:
    """Everything the durable layer did to keep a campaign alive."""

    resumed_cells: int = 0
    retries: int = 0
    respawns: int = 0
    worker_deaths: int = 0
    deadline_kills: int = 0
    stalled_workers: int = 0
    stragglers: int = 0
    speculative_wins: int = 0
    speculative_wasted: int = 0
    speculative_cancelled: int = 0
    checkpoints: int = 0
    #: Host seconds deliberately spent waiting (backoff pacing): fully
    #: deterministic, so reported separately from machinery cost.
    fault_dwell_s: float = 0.0
    #: Host seconds of partial attempts destroyed by failures: the age
    #: of every in-flight attempt at the moment its worker died or its
    #: pool was torn down.  For an injected hang this includes the
    #: deadline dwell (the attempt's age when killed >= the deadline).
    lost_work_s: float = 0.0

    def collect(self, registry: "MetricsRegistry") -> None:
        """Fold the ledger into ``parallel.recovery.*`` metrics."""
        registry.counter("parallel.recovery.resumed_cells").inc(self.resumed_cells)
        registry.counter("parallel.recovery.retries").inc(self.retries)
        registry.counter("parallel.recovery.respawns").inc(self.respawns)
        registry.counter("parallel.recovery.worker_deaths").inc(self.worker_deaths)
        registry.counter("parallel.recovery.deadline_kills").inc(self.deadline_kills)
        registry.counter("parallel.recovery.stragglers").inc(self.stragglers)
        registry.counter("parallel.recovery.speculative_wins").inc(
            self.speculative_wins
        )
        registry.counter("parallel.recovery.speculative_wasted").inc(
            self.speculative_wasted
        )
        registry.gauge("parallel.recovery.fault_dwell_s").set(self.fault_dwell_s)
        registry.gauge("parallel.recovery.lost_work_s").set(self.lost_work_s)

    def report(
        self,
        label: str,
        cells_total: int,
        cells_completed: int,
        wall_s: float,
        clean_wall_s: float | None = None,
        injected_dwell_s: float = 0.0,
        cache: "ResultCache | None" = None,
    ) -> dict:
        """The ``cedar-repro/recovery-report/v1`` JSON document.

        *clean_wall_s* is the reference wall of an undisturbed run of
        the same campaign (the chaos harness measures one); when given,
        the report carries both the raw wall overhead and the *recovery
        overhead* -- raw overhead minus everything the faults
        themselves cost (backoff dwell + destroyed partial attempts +
        *injected_dwell_s*, the sleeps the chaos plan injected), i.e.
        the cost of the recovery machinery proper
        (``docs/resilience.md`` defines the metric precisely).
        """
        dwell = self.fault_dwell_s + self.lost_work_s + injected_dwell_s
        overhead: dict[str, float | None] = {
            "clean_wall_s": round(clean_wall_s, 6)
            if clean_wall_s is not None
            else None,
            "overhead_pct": None,
            "recovery_overhead_pct": None,
        }
        if clean_wall_s is not None and clean_wall_s > 0:
            overhead["overhead_pct"] = round(
                100.0 * (wall_s - clean_wall_s) / clean_wall_s, 3
            )
            overhead["recovery_overhead_pct"] = round(
                100.0 * max(0.0, wall_s - dwell - clean_wall_s) / clean_wall_s, 3
            )
        return {
            "schema": RECOVERY_REPORT_SCHEMA,
            "label": label,
            "code_fingerprint": code_fingerprint(),
            "cells": {
                "total": cells_total,
                "completed": cells_completed,
                "resumed_from_journal": self.resumed_cells,
            },
            "recovery": {
                "retries": self.retries,
                "respawns": self.respawns,
                "worker_deaths": self.worker_deaths,
                "deadline_kills": self.deadline_kills,
                "stalled_workers": self.stalled_workers,
                "stragglers": self.stragglers,
                "speculative_wins": self.speculative_wins,
                "speculative_wasted": self.speculative_wasted,
                "speculative_cancelled": self.speculative_cancelled,
                "checkpoints": self.checkpoints,
            },
            "cache": {
                "write_errors": cache.write_errors if cache is not None else 0,
                "quarantined": cache.quarantined if cache is not None else 0,
                "disabled": bool(cache.disabled) if cache is not None else False,
            },
            "wall": {
                "wall_s": round(wall_s, 6),
                "fault_dwell_s": round(self.fault_dwell_s, 6),
                "lost_work_s": round(self.lost_work_s, 6),
                "injected_dwell_s": round(injected_dwell_s, 6),
                **overhead,
            },
        }


def save_recovery_report(report: dict, path: str | Path) -> None:
    """Write a recovery report as pretty-printed JSON."""
    Path(path).write_text(json.dumps(report, indent=2) + "\n")


# -- worker side -------------------------------------------------------------


def _heartbeat_loop(path: str, interval_s: float) -> None:
    """Daemon thread: stamp this worker's liveness file forever.

    The stamp is written atomically (temp + ``os.replace``) so the
    coordinator never reads a torn/empty beat and mistakes a busy
    worker for a dead one.
    """
    target = Path(path)
    tmp = Path(f"{path}.tmp")
    while True:
        try:
            tmp.write_text(f"{host_clock_s():.6f}")
            os.replace(tmp, target)
        except OSError:
            pass
        time.sleep(interval_s)


def _durable_init(hb_dir: str, interval_s: float) -> None:
    """Pool initializer: ignore SIGINT, start the heartbeat thread.

    SIGINT belongs to the coordinator (it checkpoints); a worker that
    dies of the operator's ^C would just be one more death to recover
    from, so it is ignored here.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    path = os.path.join(hb_dir, f"hb-{os.getpid()}")
    thread = threading.Thread(
        target=_heartbeat_loop, args=(path, interval_s), daemon=True
    )
    thread.start()


def _durable_worker(
    payload: "tuple[CellSpec, int, float, bool, HostFault | None]",
) -> tuple:
    """Pool entry point: optionally sabotaged, otherwise `_worker`.

    The chaos seam: when the coordinator's plan names this cell
    attempt, the fault is applied *inside* the worker (a kill timer
    racing the simulation, a hang, a slow start), so recovery is
    exercised against real process-level failures, not mocks.
    """
    spec, attempt, submit_s, ship, fault = payload
    timer = None
    if fault is not None:
        from repro.faults.host import apply_host_fault

        timer = apply_host_fault(fault)
    try:
        return _worker((spec, attempt, submit_s, ship))
    finally:
        if timer is not None:
            timer.cancel()


# -- coordinator-side health helpers -----------------------------------------


def stale_workers(hb_dir: str | Path, now_s: float, timeout_s: float) -> list[int]:
    """PIDs of workers whose heartbeat is older than *timeout_s*.

    Reads the per-PID liveness files the workers stamp.  A file that
    vanished mid-scan or does not parse is treated as *alive* -- the
    worker was writing it moments ago; only a well-formed beat that has
    genuinely aged out counts as stale.  Pure: callers decide what to
    kill.
    """
    stale: list[int] = []
    try:
        entries = sorted(Path(hb_dir).glob("hb-*"))
    except OSError:
        return stale
    for entry in entries:
        try:
            pid = int(entry.name.split("-", 1)[1])
        except (IndexError, ValueError):
            continue  # a writer's temp file, not a beat
        try:
            beat = float(entry.read_text())
        except (OSError, ValueError):
            continue
        if now_s - beat > timeout_s:
            stale.append(pid)
    return stale


@dataclass
class _InFlight:
    """One dispatched attempt the coordinator is tracking."""

    spec: CellSpec
    attempt: int
    submit_s: float
    speculative: bool = False


@dataclass
class _Pending:
    """One attempt scheduled but not yet dispatched (backoff pacing)."""

    spec: CellSpec
    attempt: int
    eligible_s: float


class _StopFlag:
    """Signal-handler target: which signal asked the campaign to stop."""

    def __init__(self) -> None:
        self.reason: str | None = None

    def trip(self, signum: int, frame: "FrameType | None") -> None:
        self.reason = signal.Signals(signum).name


# -- the durable executor -----------------------------------------------------


def durable_execute_cells(
    specs: "list[CellSpec]",
    journal: CampaignJournal,
    cache: ResultCache,
    jobs: int = 2,
    retries: int = 3,
    policy: DurablePolicy | None = None,
    metrics: "MetricsRegistry | None" = None,
    telemetry: "CampaignTelemetry | None" = None,
    chaos: "HostChaosPlan | None" = None,
    resumed_keys: "frozenset[str] | None" = None,
    handle_signals: bool = True,
) -> "tuple[dict[CellSpec, RunResult], list[CellFailure], RecoveryLedger]":
    """Run every spec to completion, surviving host-level failures.

    The crash-safe sibling of
    :func:`~repro.parallel.executor.execute_cells`: same results
    contract (results keyed by spec, failures in input order), plus the
    journal, the health monitor, deterministic-backoff retries,
    straggler speculation and SIGINT/SIGTERM checkpointing.  *cache*
    and *journal* are mandatory -- they are what make the campaign
    durable.  Cells whose key is in *resumed_keys* and whose result the
    cache still holds are served without simulation and counted as
    recovered.

    Returns ``(results, failures, ledger)``.  Raises
    :class:`CampaignInterrupted` after checkpointing on a signal.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    policy = policy if policy is not None else DurablePolicy()
    if metrics is None and telemetry is not None:
        metrics = telemetry.registry
    resumed_keys = resumed_keys if resumed_keys is not None else frozenset()

    ledger = RecoveryLedger()
    results: "dict[CellSpec, RunResult]" = {}
    errors: "dict[CellSpec, tuple[str, str]]" = {}
    attempts: "dict[CellSpec, int]" = {}
    failed: "set[CellSpec]" = set()
    recent_walls: "deque[float]" = deque(maxlen=_STRAGGLER_WINDOW)
    speculated: "set[CellSpec]" = set()

    if telemetry is not None:
        telemetry.begin(specs, jobs)

    def _recover_event(kind: str, **fields: object) -> None:
        if telemetry is not None:
            telemetry.on_recovery(kind, **fields)

    # Serve cache first: journal-recovered cells and ordinary warm hits.
    pending: "deque[_Pending]" = deque()
    for spec in specs:
        key = spec.key()
        hit = cache.get(key)
        if hit is not None:
            results[spec] = hit
            journal.record_done(spec, hit)
            if key in resumed_keys:
                ledger.resumed_cells += 1
                _recover_event("resumed_cell", app=spec.app, p=spec.n_processors)
            if telemetry is not None:
                telemetry.on_cache_hit(spec, hit)
            continue
        attempts[spec] = 1
        pending.append(_Pending(spec=spec, attempt=1, eligible_s=0.0))

    stop = _StopFlag()
    previous_handlers: "dict[int, object]" = {}
    if handle_signals and threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, stop.trip)

    hb_dir = tempfile.mkdtemp(prefix="cedar-hb-")
    inflight: "dict[Future, _InFlight]" = {}
    live: "dict[CellSpec, list[Future]]" = {}
    pool: "ProcessPoolExecutor | None" = None

    def _new_pool() -> ProcessPoolExecutor:
        for entry in Path(hb_dir).glob("hb-*"):
            try:
                entry.unlink()
            except OSError:
                pass
        return ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_durable_init,
            initargs=(hb_dir, policy.heartbeat_interval_s),
        )

    def _worker_pids() -> list[int]:
        pids = []
        for entry in Path(hb_dir).glob("hb-*"):
            try:
                pids.append(int(entry.name.split("-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return pids

    def _kill(pids: "Iterable[int]") -> None:
        for pid in pids:
            try:
                os.kill(pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                continue

    def _submit(entry: _Pending, speculative: bool = False) -> None:
        assert pool is not None
        fault = (
            chaos.for_cell(entry.spec.app, entry.spec.n_processors, entry.attempt)
            if chaos is not None and not speculative
            else None
        )
        submit_s = (
            telemetry.on_submit(entry.spec, entry.attempt)
            if telemetry is not None
            else host_clock_s()
        )
        journal.record_dispatch(entry.spec, entry.attempt)
        ship = telemetry is not None
        future = pool.submit(
            _durable_worker, (entry.spec, entry.attempt, submit_s, ship, fault)
        )
        inflight[future] = _InFlight(
            spec=entry.spec,
            attempt=entry.attempt,
            submit_s=submit_s,
            speculative=speculative,
        )
        live.setdefault(entry.spec, []).append(future)

    def _schedule_retry(spec: CellSpec, kind: str, message: str) -> None:
        """One more same-seed attempt after deterministic backoff."""
        if spec in results or spec in failed:
            return
        errors[spec] = (kind, message)
        if attempts[spec] > retries:
            failed.add(spec)
            journal.record_failed(
                spec,
                CellFailure(
                    app=spec.app,
                    n_processors=spec.n_processors,
                    attempts=attempts[spec],
                    error_type=kind,
                    message=message,
                ),
            )
            return
        attempts[spec] += 1
        wait_s = backoff_s(
            attempts[spec] - 1, policy.backoff_base_s, policy.backoff_cap_s
        )
        ledger.retries += 1
        ledger.fault_dwell_s += wait_s
        _observe(metrics, "counter", "parallel.retries", 1)
        _recover_event(
            "retry",
            app=spec.app,
            p=spec.n_processors,
            attempt=attempts[spec],
            backoff_s=wait_s,
            error=kind,
        )
        pending.append(
            _Pending(
                spec=spec, attempt=attempts[spec], eligible_s=host_clock_s() + wait_s
            )
        )

    def _respawn(
        reason: str,
        affected_error: str,
        guilty: "set[CellSpec] | None" = None,
    ) -> None:
        """Replace the pool; reschedule everything that was in flight.

        Cells in *guilty* burn a retry attempt (their own attempt
        misbehaved); innocent bystanders whose pool was torn down under
        them re-queue at their current attempt -- the cell-level bound
        is the deadline, and another cell's fault must not eat their
        retry budget.  ``guilty=None`` means every affected cell is
        guilty (a broken pool cannot say which worker died).  Every
        destroyed partial attempt's age lands in ``lost_work_s``.
        """
        nonlocal pool
        ledger.respawns += 1
        _recover_event("respawn", reason=reason)
        _kill(_worker_pids())
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        flights = list(inflight.values())
        inflight.clear()
        live.clear()
        now_s = host_clock_s()
        for rec in flights:
            if rec.spec in results or rec.spec in failed:
                continue
            ledger.lost_work_s += max(0.0, now_s - rec.submit_s)
            if rec.speculative:
                speculated.discard(rec.spec)
                # Was the primary also in flight?  Both died with the
                # pool; one reschedule below covers the cell.
                continue
            if guilty is None or rec.spec in guilty:
                _schedule_retry(rec.spec, affected_error, reason)
            else:
                pending.append(
                    _Pending(
                        spec=rec.spec,
                        attempt=rec.attempt,
                        eligible_s=now_s + policy.backoff_base_s,
                    )
                )
        pool = _new_pool()

    def _complete(future: Future, rec: _InFlight) -> bool:
        """Fold one finished future in; returns True if the pool broke."""
        try:
            payload = future.result()
        except Exception as exc:  # noqa: BLE001 - pool breakage
            if rec.spec in results or rec.spec in failed:
                return True
            ledger.worker_deaths += 1
            ledger.lost_work_s += max(0.0, host_clock_s() - rec.submit_s)
            _observe(metrics, "counter", "parallel.worker_deaths", 1)
            _recover_event(
                "worker_death",
                app=rec.spec.app,
                p=rec.spec.n_processors,
                error=type(exc).__name__,
            )
            if rec.speculative:
                # The primary attempt reschedules the cell (it is still
                # tracked, or its own death record handles it).
                speculated.discard(rec.spec)
            else:
                _schedule_retry(rec.spec, type(exc).__name__, str(exc))
            return True
        spec = rec.spec
        span: CellSpan = payload[-1]
        if spec in results:
            # The sibling of a speculative pair: its result arrived
            # second and is discarded (byte-identical by determinism).
            ledger.speculative_wasted += 1
            _recover_event(
                "speculative_wasted", app=spec.app, p=spec.n_processors
            )
            return False
        if payload[0] == "ok":
            result: "RunResult" = payload[1]
            results[spec] = result
            errors.pop(spec, None)
            cache.put(spec.key(), result)
            journal.record_done(spec, result)
            recent_walls.append(span.span_s)
            if rec.speculative:
                ledger.speculative_wins += 1
                _recover_event(
                    "speculative_win", app=spec.app, p=spec.n_processors
                )
            # First result wins: cancel the sibling if it has not
            # started; a running sibling finishes as "wasted" above.
            for sibling in live.get(spec, []):
                if sibling is not future and sibling.cancel():
                    inflight.pop(sibling, None)
                    ledger.speculative_cancelled += 1
            live.pop(spec, None)
            if telemetry is not None:
                telemetry.on_span(span)
        else:
            _schedule_retry(spec, payload[1], payload[2])
            if telemetry is not None:
                telemetry.on_span(span, will_retry=spec not in failed)
        return False

    def _check_health(now_s: float) -> None:
        """Deadline + heartbeat sweep; respawns at most once per call."""
        if policy.cell_deadline_s is not None:
            overdue = [
                rec
                for rec in inflight.values()
                if now_s - rec.submit_s > policy.cell_deadline_s
            ]
            if overdue:
                ledger.deadline_kills += len(overdue)
                for rec in overdue:
                    _recover_event(
                        "deadline_kill",
                        app=rec.spec.app,
                        p=rec.spec.n_processors,
                        age_s=round(now_s - rec.submit_s, 3),
                    )
                _respawn(
                    "cell deadline exceeded",
                    "DeadlineExceeded",
                    guilty={rec.spec for rec in overdue},
                )
                return
        stalled = stale_workers(hb_dir, now_s, policy.heartbeat_timeout_s)
        if stalled and inflight:
            ledger.stalled_workers += len(stalled)
            for pid in stalled:
                _recover_event("stalled_worker", pid=pid)
            _respawn("worker heartbeat lost", "WorkerStalled", guilty=set())

    def _maybe_speculate(now_s: float) -> None:
        """Re-dispatch the slowest straggler onto a free slot."""
        if (
            not policy.speculate
            or pending
            or len(inflight) >= jobs
            or len(recent_walls) < policy.straggler_min_samples
        ):
            return
        p95 = percentile(list(recent_walls), 0.95)
        if p95 is None:
            return
        threshold = max(policy.straggler_factor * p95, policy.straggler_floor_s)
        for rec in sorted(inflight.values(), key=lambda r: r.submit_s):
            if rec.speculative or rec.spec in speculated:
                continue
            if now_s - rec.submit_s <= threshold:
                continue
            speculated.add(rec.spec)
            ledger.stragglers += 1
            _observe(metrics, "counter", "parallel.speculative_dispatches", 1)
            _recover_event(
                "speculative_dispatch",
                app=rec.spec.app,
                p=rec.spec.n_processors,
                age_s=round(now_s - rec.submit_s, 3),
                threshold_s=round(threshold, 3),
            )
            _submit(
                _Pending(spec=rec.spec, attempt=rec.attempt, eligible_s=0.0),
                speculative=True,
            )
            return

    def _checkpoint(reason: str) -> None:
        ledger.checkpoints += 1
        _kill(_worker_pids())
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        journal.record_checkpoint(reason)
        _recover_event("checkpoint", reason=reason)

    interrupted: "CampaignInterrupted | None" = None
    try:
        with WallTimer() as pool_wall:
            if pending:
                pool = _new_pool()
            while len(results) + len(failed) < len(specs):
                if stop.reason is not None:
                    _checkpoint(stop.reason)
                    interrupted = CampaignInterrupted(journal.path, stop.reason)
                    break
                now_s = host_clock_s()
                while pending and len(inflight) < jobs:
                    entry = min(pending, key=lambda e: e.eligible_s)
                    if entry.eligible_s > now_s:
                        break
                    pending.remove(entry)
                    if entry.spec in results or entry.spec in failed:
                        continue
                    _submit(entry)
                _maybe_speculate(now_s)
                if not inflight:
                    if not pending:
                        break
                    next_eligible = min(e.eligible_s for e in pending)
                    time.sleep(
                        min(
                            policy.poll_interval_s,
                            max(0.0, next_eligible - host_clock_s()),
                        )
                    )
                    continue
                finished, _ = wait(
                    list(inflight),
                    timeout=policy.poll_interval_s,
                    return_when=FIRST_COMPLETED,
                )
                pool_broke = False
                for future in finished:
                    rec = inflight.pop(future, None)
                    if rec is None:
                        continue
                    siblings = live.get(rec.spec)
                    if siblings is not None and future in siblings:
                        siblings.remove(future)
                        if not siblings:
                            live.pop(rec.spec, None)
                    pool_broke = _complete(future, rec) or pool_broke
                if pool_broke:
                    _respawn("broken process pool", "BrokenProcessPool")
                else:
                    _check_health(host_clock_s())
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        _kill(_worker_pids())
        for entry_path in Path(hb_dir).glob("hb-*"):
            try:
                entry_path.unlink()
            except OSError:
                pass
        try:
            os.rmdir(hb_dir)
        except OSError:
            pass
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)  # type: ignore[arg-type]
        failures = [
            CellFailure(
                app=spec.app,
                n_processors=spec.n_processors,
                attempts=attempts.get(spec, 0),
                error_type=errors[spec][0],
                message=errors[spec][1],
            )
            for spec in specs
            if spec in failed and spec in errors
        ]
        _observe(metrics, "gauge", "parallel.jobs", jobs)
        _observe(metrics, "counter", "parallel.cells.total", len(specs))
        _observe(metrics, "counter", "parallel.cells.completed", len(results))
        _observe(metrics, "counter", "parallel.cells.failed", len(failures))
        _observe(metrics, "gauge", "parallel.wall_s", pool_wall.elapsed_s)
        if metrics is not None:
            ledger.collect(metrics)
            cache.collect(metrics)
        if telemetry is not None:
            telemetry.end()
        journal.close()
    if interrupted is not None:
        raise interrupted
    return results, failures, ledger


# -- sweep-shaped entry points ------------------------------------------------


def _sweep_specs(
    apps: "Sequence[str]",
    configs: "Sequence[int]",
    scale: float,
    seed: int,
    campaign: "CampaignSpec | None",
    statfx_interval_ns: int,
    max_events: int | None,
    max_sim_time: int | None,
) -> "list[CellSpec]":
    base = CellSpec(
        app="",
        n_processors=1,
        scale=scale,
        seed=seed,
        campaign=campaign,
        statfx_interval_ns=statfx_interval_ns,
        max_events=max_events,
        max_sim_time=max_sim_time,
    )
    return [
        replace(base, app=app, n_processors=n_proc)
        for app in apps
        for n_proc in configs
    ]


def _assemble_outcome(
    specs: "list[CellSpec]",
    results: "Mapping[CellSpec, RunResult]",
    failures: "list[CellFailure]",
    scale: float,
    seed: int,
    recovery: "dict | None" = None,
) -> SweepOutcome:
    outcome = SweepOutcome(
        scale=scale, seed=seed, failures=failures, recovery=recovery
    )
    for spec in specs:
        by_config = outcome.results.setdefault(spec.app, {})
        if spec in results:
            by_config[spec.n_processors] = results[spec]
    return outcome


def durable_sweep(
    apps: "Iterable[str]",
    checkpoint: str | Path,
    configs: "Iterable[int] | None" = None,
    scale: float = DEFAULT_SCALE,
    seed: int = 1994,
    jobs: int = 2,
    cache_dir: "str | Path | None" = None,
    campaign: "CampaignSpec | None" = None,
    retries: int = 3,
    policy: DurablePolicy | None = None,
    metrics: "MetricsRegistry | None" = None,
    telemetry: "CampaignTelemetry | None" = None,
    chaos: "HostChaosPlan | None" = None,
    label: str = "campaign",
    statfx_interval_ns: int = 200_000,
    max_events: int | None = None,
    max_sim_time: int | None = None,
    handle_signals: bool = True,
) -> SweepOutcome:
    """Crash-safe sibling of :func:`~repro.parallel.parallel_sweep`.

    *checkpoint* names the write-ahead journal.  If it does not exist,
    it is created (and the campaign starts fresh); if it exists, the
    campaign **resumes**: the journal's fingerprint is validated, its
    cell set is checked against this call's grid, and completed cells
    are served from the cache.  The returned outcome additionally
    carries the recovery report on ``outcome.recovery``.
    """
    from repro.core.reference import CONFIGS

    if configs is None:
        configs = CONFIGS
    apps = list(apps)
    configs = list(configs)
    specs = _sweep_specs(
        apps, configs, scale, seed, campaign, statfx_interval_ns,
        max_events, max_sim_time,
    )
    checkpoint = Path(checkpoint)
    if cache_dir is None:
        cache_dir = checkpoint.with_name(checkpoint.name + ".cache")
    cache = ResultCache(cache_dir)
    resumed_keys: frozenset[str] = frozenset()
    if checkpoint.exists():
        state = load_journal(checkpoint)
        state.check_fingerprint()
        journal_keys = {spec.key() for spec in state.specs}
        grid_keys = {spec.key() for spec in specs}
        if journal_keys != grid_keys:
            raise JournalError(
                f"journal {checkpoint} covers a different cell set than this "
                f"sweep ({len(journal_keys)} vs {len(grid_keys)} cells); "
                f"resume it with `cedar-repro resume` or pick a new "
                f"checkpoint path"
            )
        resumed_keys = frozenset(state.done)
        journal = CampaignJournal.append_to(checkpoint)
    else:
        journal = CampaignJournal.create(
            checkpoint,
            specs,
            seed=seed,
            label=label,
            cache_dir=cache_dir,
            sweep={
                "apps": apps,
                "configs": configs,
                "scale": scale,
                "seed": seed,
                "campaign": campaign.to_dict() if campaign is not None else None,
            },
        )
    with WallTimer() as wall:
        results, failures, ledger = durable_execute_cells(
            specs,
            journal=journal,
            cache=cache,
            jobs=jobs,
            retries=retries,
            policy=policy,
            metrics=metrics,
            telemetry=telemetry,
            chaos=chaos,
            resumed_keys=resumed_keys,
            handle_signals=handle_signals,
        )
    recovery = ledger.report(
        label=label,
        cells_total=len(specs),
        cells_completed=len(results),
        wall_s=wall.elapsed_s,
        cache=cache,
    )
    return _assemble_outcome(specs, results, failures, scale, seed, recovery)


def resume_sweep(
    journal_path: str | Path,
    jobs: int = 2,
    cache_dir: "str | Path | None" = None,
    retries: int = 3,
    policy: DurablePolicy | None = None,
    metrics: "MetricsRegistry | None" = None,
    telemetry: "CampaignTelemetry | None" = None,
    handle_signals: bool = True,
) -> SweepOutcome:
    """Resume an interrupted campaign from its write-ahead journal.

    Loads the journal, refuses a code-fingerprint mismatch
    (:class:`~repro.parallel.journal.JournalMismatchError`), serves
    completed cells from the recorded result cache, and re-runs only
    the incomplete ones.  The final outcome -- and its tables -- are
    byte-identical to an uninterrupted run of the same campaign.
    """
    state = load_journal(journal_path)
    state.check_fingerprint()
    if not state.specs:
        raise JournalError(f"journal {journal_path} carries no cells")
    cache_path = cache_dir if cache_dir is not None else state.cache_dir
    if cache_path is None:
        raise JournalError(
            f"journal {journal_path} records no cache directory; pass cache_dir"
        )
    cache = ResultCache(cache_path)
    journal = CampaignJournal.append_to(journal_path)
    sweep_meta = state.header.get("sweep") or {}
    scale = float(sweep_meta.get("scale", state.specs[0].scale))
    seed = int(
        state.header.get("seed")
        if state.header.get("seed") is not None
        else state.specs[0].seed
    )
    with WallTimer() as wall:
        results, failures, ledger = durable_execute_cells(
            state.specs,
            journal=journal,
            cache=cache,
            jobs=jobs,
            retries=retries,
            policy=policy,
            metrics=metrics,
            telemetry=telemetry,
            resumed_keys=frozenset(state.done),
            handle_signals=handle_signals,
        )
    recovery = ledger.report(
        label=state.label,
        cells_total=len(state.specs),
        cells_completed=len(results),
        wall_s=wall.elapsed_s,
        cache=cache,
    )
    return _assemble_outcome(state.specs, results, failures, scale, seed, recovery)
