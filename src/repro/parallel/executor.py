"""Parallel, cached execution of sweep cells.

The unit of work is a :class:`CellSpec` -- one ``(app, P, scale, seed,
campaign)`` point of a sweep, optionally bounded by the runaway
watchdogs.  :func:`run_cell` executes one spec and returns a detached
:func:`~repro.parallel.snapshot.snapshot_result`; :func:`execute_cells`
fans a list of specs out across a ``ProcessPoolExecutor`` (or runs them
inline with ``jobs=1``) behind the content-addressed
:class:`~repro.parallel.cache.ResultCache`; :func:`parallel_sweep`
assembles the outcome into the same
:class:`~repro.core.resilience.SweepOutcome` the serial
:func:`~repro.core.resilience.resilient_sweep` produces, so the partial
tables and failure reports compose unchanged.

Determinism: every cell is an independent, seeded simulation; results
are keyed by cell -- never by completion order -- so a ``jobs=4`` sweep
is byte-identical to the serial one.  Each cell also records its
:class:`~repro.analyze.sanitize.DeterminismSink` schedule hash on
``result.schedule_hash``, making equivalence checkable event-for-event.

Resilience: a failing cell costs its future, not the pool.  Exceptions
are caught *inside* the worker and returned as structured
``(error_type, message)`` payloads -- never re-raised through the IPC
pickle machinery -- and every cell gets the same ``1 + retries``
same-seed attempts the serial path gives it.

Telemetry: pass a :class:`~repro.obs.campaign.CampaignTelemetry` and
every attempt comes back wrapped in a
:class:`~repro.obs.campaign.CellSpan` -- queue wait, run wall, failure
kind, schedule hash, kernel fast-path counters, plus a picklable
snapshot of the worker's whole metric registry -- absorbed in
*completion order* so the event log, progress line and campaign
registry track the pool live.  Results stay keyed by spec, so telemetry
never perturbs the tables.
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.resilience import CellFailure, SweepOutcome
from repro.core.runner import DEFAULT_SCALE
from repro.obs.campaign import CellSpan
from repro.obs.hostclock import WallTimer, host_clock_s
from repro.parallel.cache import ResultCache, cell_key
from repro.parallel.snapshot import snapshot_result

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runner import RunResult
    from repro.faults.spec import CampaignSpec
    from repro.obs.campaign import CampaignTelemetry
    from repro.obs.instrument import Observability
    from repro.obs.registry import MetricsRegistry

__all__ = ["CellSpec", "execute_cells", "parallel_sweep", "run_cell"]

#: Histogram boundaries for per-cell wall time (seconds).
_CELL_WALL_BOUNDARIES = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0)


@dataclass(frozen=True)
class CellSpec:
    """Everything that determines one sweep cell's result.

    The spec is picklable (it crosses the pool boundary) and hashable
    (it keys result dicts); :func:`~repro.parallel.cache.cell_key`
    fingerprints exactly these fields plus the code version.
    """

    app: str
    n_processors: int
    scale: float = DEFAULT_SCALE
    seed: int = 1994
    campaign: "CampaignSpec | None" = None
    statfx_interval_ns: int = 200_000
    max_events: int | None = None
    max_sim_time: int | None = None
    #: Attach a :class:`~repro.analyze.sanitize.DeterminismSink` and
    #: record the schedule hash on the result (cheap; on by default).
    fingerprint_schedule: bool = True
    #: Canonical scenario JSON (see
    #: :func:`repro.scenario.schema.canonical_scenario_json`) when this
    #: cell runs a compiled scenario instead of a named built-in app;
    #: ``app`` then carries the scenario name for display/grouping only
    #: -- the cache key is derived from the document digest, never the
    #: name.  A plain string keeps the spec hashable and picklable.
    scenario: str | None = None

    def __post_init__(self) -> None:
        if self.scenario is not None and self.campaign is not None:
            raise ValueError(
                "a cell cannot combine a scenario with a fault campaign: "
                "express background interference in the scenario document"
            )

    def key(self) -> str:
        """Content-addressed cache key of this cell."""
        return cell_key(self)


def run_cell(spec: CellSpec, obs: "Observability | None" = None) -> "RunResult":
    """Execute one cell and return its detached snapshot.

    This is both the serial path (``jobs=1``) and the function each
    pool worker runs; the two therefore cannot diverge.  Pass an
    :class:`~repro.obs.instrument.Observability` to keep hold of the
    run's metric registry (the telemetry seam: workers snapshot it into
    their :class:`~repro.obs.campaign.CellSpan`); the schedule-order
    sink is attached to it either way.  With ``obs=None`` *and*
    ``fingerprint_schedule=False`` no Observability is materialised at
    all: nobody can see the registry a throwaway instance would have
    collected, and skipping the per-event metrics harvest keeps the
    sink-free cell on the fast path end to end.
    """
    from repro.analyze.sanitize import DeterminismSink, _resolve_builder
    from repro.obs.instrument import Observability

    sink = DeterminismSink(order_capacity=0) if spec.fingerprint_schedule else None
    if obs is None and sink is not None:
        obs = Observability()
    if sink is not None and obs is not None:
        obs.extra_sinks.append(sink)
    if spec.scenario is not None:
        import json

        from repro.scenario.compiler import compile_scenario

        result = compile_scenario(json.loads(spec.scenario)).run(
            spec.n_processors,
            spec.scale,
            spec.seed,
            obs=obs,
            statfx_interval_ns=spec.statfx_interval_ns,
            max_events=spec.max_events,
            max_sim_time=spec.max_sim_time,
        )
    elif spec.campaign is not None:
        from repro.faults.campaign import run_with_campaign

        result = run_with_campaign(
            spec.campaign,
            spec.app,
            spec.n_processors,
            scale=spec.scale,
            seed=spec.seed,
            obs=obs,
            statfx_interval_ns=spec.statfx_interval_ns,
            max_events=spec.max_events,
            max_sim_time=spec.max_sim_time,
        ).result
    else:
        from repro.core.runner import run_application
        from repro.xylem.params import XylemParams

        result = run_application(
            _resolve_builder(spec.app)(),
            spec.n_processors,
            scale=spec.scale,
            os_params=XylemParams(seed=spec.seed),
            statfx_interval_ns=spec.statfx_interval_ns,
            obs=obs,
            max_events=spec.max_events,
            max_sim_time=spec.max_sim_time,
        )
    if sink is not None:
        result.schedule_hash = sink.schedule_hash
    return snapshot_result(result)


def _worker(payload: "tuple[CellSpec, int, float, bool]") -> tuple:
    """Pool entry point: never raises, so futures never carry exceptions.

    *payload* is ``(spec, attempt, submit_s, ship_metrics)``; returns
    ``("ok", snapshot, span)`` or ``("err", error_type, message, span)``
    where *span* is the attempt's :class:`~repro.obs.campaign.CellSpan`
    (carrying the worker registry's snapshot when *ship_metrics* is
    set).  Catching inside the worker keeps exotic exception types
    (whose constructors don't round-trip through pickle) from wedging
    the result pipe, and makes a failed cell cost exactly its own
    future.
    """
    from repro.obs.instrument import Observability

    spec, attempt, submit_s, ship_metrics = payload
    obs = Observability()
    start_s = host_clock_s()
    try:
        result = run_cell(spec, obs=obs)
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        span = CellSpan(
            app=spec.app,
            n_processors=spec.n_processors,
            seed=spec.seed,
            attempt=attempt,
            worker_pid=os.getpid(),
            submit_s=submit_s,
            start_s=start_s,
            end_s=host_clock_s(),
            run_wall_s=0.0,
            failure_kind=type(exc).__name__,
            metrics=obs.registry.snapshot() if ship_metrics else None,
        )
        return ("err", type(exc).__name__, str(exc), span)
    span = CellSpan(
        app=spec.app,
        n_processors=spec.n_processors,
        seed=spec.seed,
        attempt=attempt,
        worker_pid=os.getpid(),
        submit_s=submit_s,
        start_s=start_s,
        end_s=host_clock_s(),
        run_wall_s=result.wall_s,
        schedule_hash=result.schedule_hash,
        kernel_stats=dict(result.kernel_stats),
        metrics=obs.registry.snapshot() if ship_metrics else None,
    )
    return ("ok", result, span)


def _observe(
    metrics: "MetricsRegistry | None", attr: str, name: str, value: int | float
) -> None:
    if metrics is None:
        return
    if attr == "counter":
        metrics.counter(name).inc(value)
    elif attr == "gauge":
        metrics.gauge(name).set(value)
    else:
        metrics.histogram(name, _CELL_WALL_BOUNDARIES).observe(value)


def execute_cells(
    specs: "list[CellSpec]",
    jobs: int = 1,
    cache: ResultCache | None = None,
    retries: int = 1,
    metrics: "MetricsRegistry | None" = None,
    telemetry: "CampaignTelemetry | None" = None,
) -> "tuple[dict[CellSpec, RunResult], list[CellFailure]]":
    """Run every spec, in parallel when ``jobs > 1``, behind the cache.

    Returns ``(results, failures)`` where *results* maps each completed
    spec to its snapshot and *failures* lists the cells that exhausted
    their ``1 + retries`` same-seed attempts, in input order.  Cache
    hits skip simulation entirely; fresh results are written back.

    With *telemetry*, every submit/cache-hit/attempt/retry is logged
    and aggregated as it completes (see :mod:`repro.obs.campaign`).
    When *telemetry* is given without *metrics*, the ``parallel.*`` /
    ``cache.*`` counters land in the telemetry's campaign registry.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if metrics is None and telemetry is not None:
        metrics = telemetry.registry

    results: "dict[CellSpec, RunResult]" = {}
    errors: dict[CellSpec, tuple[str, str]] = {}
    attempts: dict[CellSpec, int] = {}

    if telemetry is not None:
        telemetry.begin(specs, jobs)

    pending: list[CellSpec] = []
    for spec in specs:
        if cache is not None:
            hit = cache.get(spec.key())
            if hit is not None:
                results[spec] = hit
                if telemetry is not None:
                    telemetry.on_cache_hit(spec, hit)
                continue
        pending.append(spec)

    def _absorb(spec: CellSpec, payload: tuple) -> None:
        """Fold one finished attempt in, the moment it completes."""
        if payload[0] == "ok":
            results[spec] = payload[1]
            errors.pop(spec, None)
            if cache is not None:
                cache.put(spec.key(), payload[1])
            will_retry = False
        else:
            errors[spec] = (payload[1], payload[2])
            will_retry = attempts[spec] <= retries
            if will_retry:
                pending.append(spec)
                _observe(metrics, "counter", "parallel.retries", 1)
        if telemetry is not None:
            telemetry.on_span(payload[-1], will_retry=will_retry)

    def _broken_payload(payload_in: "tuple[CellSpec, int, float, bool]", exc: BaseException) -> tuple:
        """Synthesize an err payload for a cell whose worker died.

        A SIGKILLed or crashed worker never returns its span; the
        coordinator stands one up so telemetry and the retry machinery
        see the death like any other failed attempt -- the campaign
        must outlive its workers.
        """
        spec, attempt, submit_s, _ship = payload_in
        now = host_clock_s()
        span = CellSpan(
            app=spec.app,
            n_processors=spec.n_processors,
            seed=spec.seed,
            attempt=attempt,
            worker_pid=0,
            submit_s=submit_s,
            start_s=submit_s,
            end_s=now,
            run_wall_s=0.0,
            failure_kind=type(exc).__name__,
        )
        _observe(metrics, "counter", "parallel.worker_deaths", 1)
        return ("err", type(exc).__name__, str(exc), span)

    try:
        with WallTimer() as pool_wall:
            while pending:
                round_specs = pending
                pending = []
                ship = telemetry is not None
                batch: list[tuple[CellSpec, int, float, bool]] = []
                for spec in round_specs:
                    attempts[spec] = attempts.get(spec, 0) + 1
                    submit_s = (
                        telemetry.on_submit(spec, attempts[spec])
                        if telemetry is not None
                        else host_clock_s()
                    )
                    batch.append((spec, attempts[spec], submit_s, ship))
                if jobs == 1:
                    for payload_in in batch:
                        _absorb(payload_in[0], _worker(payload_in))
                else:
                    # A fresh pool per retry round: a worker a wedged cell
                    # took down never poisons the retries of other cells.
                    # A worker death (BrokenProcessPool) costs the attempts
                    # that were in flight, never the campaign: each affected
                    # cell absorbs a synthetic failure and retries on the
                    # next round's fresh pool.
                    with ProcessPoolExecutor(max_workers=jobs) as pool:
                        futures = {
                            pool.submit(_worker, payload_in): payload_in
                            for payload_in in batch
                        }
                        for future in as_completed(futures):
                            payload_in = futures[future]
                            try:
                                payload = future.result()
                            except Exception as exc:  # noqa: BLE001 - pool breakage
                                payload = _broken_payload(payload_in, exc)
                            _absorb(payload_in[0], payload)
    finally:
        # Finalize on *any* exit path -- an escaping exception must
        # still leave a closed, valid campaign log and flushed metrics
        # (partial logs are still ``cedar-repro/campaign-log/v1``).
        failures = [
            CellFailure(
                app=spec.app,
                n_processors=spec.n_processors,
                attempts=attempts[spec],
                error_type=errors[spec][0],
                message=errors[spec][1],
            )
            for spec in specs
            if spec in errors
        ]
        _observe(metrics, "gauge", "parallel.jobs", jobs)
        _observe(metrics, "counter", "parallel.cells.total", len(specs))
        _observe(metrics, "counter", "parallel.cells.completed", len(results))
        _observe(metrics, "counter", "parallel.cells.failed", len(failures))
        _observe(metrics, "gauge", "parallel.wall_s", pool_wall.elapsed_s)
        cell_wall = 0.0
        for result in results.values():
            _observe(metrics, "histogram", "parallel.cell_wall_s", result.wall_s)
            cell_wall += result.wall_s
        if pool_wall.elapsed_s > 0 and jobs > 1:
            _observe(
                metrics,
                "gauge",
                "parallel.pool.utilization",
                min(1.0, cell_wall / (jobs * pool_wall.elapsed_s)),
            )
        if cache is not None and metrics is not None:
            cache.collect(metrics)
        if telemetry is not None:
            telemetry.end()
    return results, failures


def parallel_sweep(
    apps: "Iterable[str]",
    configs: "Iterable[int] | None" = None,
    scale: float = DEFAULT_SCALE,
    seed: int = 1994,
    jobs: int = 1,
    cache_dir: "str | Path | None" = None,
    campaign: "CampaignSpec | None" = None,
    retries: int = 1,
    metrics: "MetricsRegistry | None" = None,
    telemetry: "CampaignTelemetry | None" = None,
    statfx_interval_ns: int = 200_000,
    max_events: int | None = None,
    max_sim_time: int | None = None,
    checkpoint: "str | Path | None" = None,
    chaos=None,
    durable_policy=None,
) -> SweepOutcome:
    """Sweep ``apps x configs`` through the pool and the cache.

    A drop-in sibling of :func:`~repro.core.resilience.resilient_sweep`
    returning the same :class:`SweepOutcome` (results in input order,
    per-cell failures isolated), plus per-cell ``schedule_hash`` values
    on the results, ``parallel.*`` / ``cache.*`` metrics when a
    registry is passed, and full campaign telemetry (event log,
    progress, Perfetto spans) when a
    :class:`~repro.obs.campaign.CampaignTelemetry` is passed.

    With *checkpoint*, the sweep routes through the crash-safe layer
    (:func:`repro.parallel.durable.durable_sweep`): every cell is
    journaled before dispatch, an interrupted campaign resumes from the
    journal re-running only incomplete cells, and the outcome carries a
    recovery report.
    """
    from repro.core.reference import CONFIGS

    if checkpoint is None and (chaos is not None or durable_policy is not None):
        raise ValueError(
            "host chaos / durable policy require a checkpoint journal "
            "(pass checkpoint=...)"
        )
    if checkpoint is not None:
        from repro.parallel.durable import durable_sweep

        return durable_sweep(
            apps,
            checkpoint,
            configs=configs,
            scale=scale,
            seed=seed,
            jobs=max(jobs, 1),
            cache_dir=cache_dir,
            campaign=campaign,
            retries=retries,
            policy=durable_policy,
            metrics=metrics,
            telemetry=telemetry,
            chaos=chaos,
            statfx_interval_ns=statfx_interval_ns,
            max_events=max_events,
            max_sim_time=max_sim_time,
        )

    if configs is None:
        configs = CONFIGS
    apps = list(apps)
    configs = list(configs)
    base = CellSpec(
        app="",
        n_processors=1,
        scale=scale,
        seed=seed,
        campaign=campaign,
        statfx_interval_ns=statfx_interval_ns,
        max_events=max_events,
        max_sim_time=max_sim_time,
    )
    specs = [
        replace(base, app=app, n_processors=n_proc)
        for app in apps
        for n_proc in configs
    ]
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results, failures = execute_cells(
        specs,
        jobs=jobs,
        cache=cache,
        retries=retries,
        metrics=metrics,
        telemetry=telemetry,
    )
    outcome = SweepOutcome(scale=scale, seed=seed, failures=failures)
    for app in apps:
        by_config: dict = {}
        for n_proc in configs:
            spec = replace(base, app=app, n_processors=n_proc)
            if spec in results:
                by_config[n_proc] = results[spec]
        outcome.results[app] = by_config
    return outcome
