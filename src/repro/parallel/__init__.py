"""Parallel, cached sweep execution.

``repro.parallel`` scales the paper's sweep-shaped experiments: cells
fan out across worker processes, results land in a content-addressed
on-disk cache, and warm reruns skip simulation entirely -- while
staying byte-identical to the serial path (the model is deterministic,
and every cell carries its schedule hash to prove it).

* :class:`~repro.parallel.executor.CellSpec` /
  :func:`~repro.parallel.executor.run_cell` -- one sweep cell and its
  (serial *and* worker-side) execution.
* :func:`~repro.parallel.executor.execute_cells` /
  :func:`~repro.parallel.executor.parallel_sweep` -- pool + cache +
  per-cell failure isolation, composing with
  :func:`~repro.core.resilience.resilient_sweep` semantics.
* :class:`~repro.parallel.cache.ResultCache` /
  :func:`~repro.parallel.cache.cell_key` -- the cache and its
  fingerprinting rules.
* :func:`~repro.parallel.snapshot.snapshot_result` -- detached,
  picklable run results.
"""

from repro.parallel.cache import (
    CACHE_SCHEMA,
    ResultCache,
    cell_key,
    code_fingerprint,
    default_cache_dir,
)
from repro.parallel.executor import (
    CellSpec,
    execute_cells,
    parallel_sweep,
    run_cell,
)
from repro.parallel.snapshot import is_snapshot, snapshot_result

__all__ = [
    "CACHE_SCHEMA",
    "CellSpec",
    "ResultCache",
    "cell_key",
    "code_fingerprint",
    "default_cache_dir",
    "execute_cells",
    "is_snapshot",
    "parallel_sweep",
    "run_cell",
    "snapshot_result",
]
