"""Parallel, cached sweep execution.

``repro.parallel`` scales the paper's sweep-shaped experiments: cells
fan out across worker processes, results land in a content-addressed
on-disk cache, and warm reruns skip simulation entirely -- while
staying byte-identical to the serial path (the model is deterministic,
and every cell carries its schedule hash to prove it).

* :class:`~repro.parallel.executor.CellSpec` /
  :func:`~repro.parallel.executor.run_cell` -- one sweep cell and its
  (serial *and* worker-side) execution.
* :func:`~repro.parallel.executor.execute_cells` /
  :func:`~repro.parallel.executor.parallel_sweep` -- pool + cache +
  per-cell failure isolation, composing with
  :func:`~repro.core.resilience.resilient_sweep` semantics.
* :class:`~repro.parallel.cache.ResultCache` /
  :func:`~repro.parallel.cache.cell_key` -- the cache and its
  fingerprinting rules.
* :func:`~repro.parallel.snapshot.snapshot_result` -- detached,
  picklable run results.
* :mod:`repro.parallel.journal` / :mod:`repro.parallel.durable` -- the
  crash-safe layer: write-ahead journal, resume, worker health and
  self-healing pools, straggler speculation, recovery reports.
"""

from repro.parallel.cache import (
    CACHE_SCHEMA,
    ResultCache,
    cell_key,
    code_fingerprint,
    default_cache_dir,
)
from repro.parallel.durable import (
    RECOVERY_REPORT_SCHEMA,
    CampaignInterrupted,
    DurablePolicy,
    RecoveryLedger,
    backoff_s,
    durable_execute_cells,
    durable_sweep,
    resume_sweep,
    save_recovery_report,
)
from repro.parallel.executor import (
    CellSpec,
    execute_cells,
    parallel_sweep,
    run_cell,
)
from repro.parallel.journal import (
    JOURNAL_SCHEMA,
    CampaignJournal,
    JournalError,
    JournalMismatchError,
    JournalState,
    load_journal,
)
from repro.parallel.snapshot import is_snapshot, snapshot_result

__all__ = [
    "CACHE_SCHEMA",
    "JOURNAL_SCHEMA",
    "RECOVERY_REPORT_SCHEMA",
    "CampaignInterrupted",
    "CampaignJournal",
    "CellSpec",
    "DurablePolicy",
    "JournalError",
    "JournalMismatchError",
    "JournalState",
    "RecoveryLedger",
    "ResultCache",
    "backoff_s",
    "cell_key",
    "code_fingerprint",
    "default_cache_dir",
    "durable_execute_cells",
    "durable_sweep",
    "execute_cells",
    "is_snapshot",
    "load_journal",
    "parallel_sweep",
    "resume_sweep",
    "run_cell",
    "save_recovery_report",
    "snapshot_result",
]
