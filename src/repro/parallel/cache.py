"""Content-addressed on-disk cache of sweep-cell results.

A sweep cell is fully determined by its inputs: the simulation is
deterministic, so ``(app, P, scale, seed, campaign, watchdogs, code
version)`` names its result uniquely.  :func:`cell_key` folds exactly
those inputs into a BLAKE2 fingerprint; :class:`ResultCache` maps the
fingerprint to a pickled :func:`~repro.parallel.snapshot.snapshot_result`
on disk.

Invalidation rules
------------------
* Any change to a key field (app, processor count, scale, seed,
  campaign spec, statfx interval, watchdog limits) changes the key.
* A scenario cell additionally keys on the BLAKE2 digest of its
  canonical scenario document -- never on the scenario's display name
  -- so two different documents named alike can never collide.
* Any change to the source tree under ``src/repro`` changes
  :func:`code_fingerprint` and therefore every key: a new code version
  never reads an old version's results.
* Entries are verified on read: schema, stored key and a payload digest
  must all match, otherwise the entry counts as *corrupt* and is
  treated as a miss -- a truncated or bit-flipped file is never served.

Writes are atomic (temp file + ``os.replace``), so concurrent writers
-- e.g. two pytest sessions sharing one cache directory -- can race
safely: last writer wins with an identical payload.

Degradation rules
-----------------
The cache is an accelerator, never a dependency, so *no* cache-side
I/O trouble may abort a sweep:

* Any :class:`OSError` on write (ENOSPC, EROFS, a yanked network
  mount) degrades that put to a no-op -- counted in
  ``cache.write_errors`` with a one-time warning -- and after
  :data:`ResultCache.MAX_WRITE_ERRORS` consecutive failures the cache
  stops attempting writes entirely (``cache.disabled``).
* A corrupt envelope is *quarantined*: moved aside to
  ``<dir>/quarantine/`` (so the damage stays inspectable and is never
  re-read), counted in ``cache.quarantined``, and treated as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import sys
import warnings
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runner import RunResult
    from repro.obs.registry import MetricsRegistry
    from repro.parallel.executor import CellSpec

__all__ = [
    "CACHE_SCHEMA",
    "ResultCache",
    "cell_key",
    "code_fingerprint",
    "default_cache_dir",
]

CACHE_SCHEMA = "cedar-repro/cell-cache/v1"
# v1 -> v2: scenario cells added a "scenario" document-digest field.
KEY_SCHEMA = "cedar-repro/cell-key/v2"

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "CEDAR_REPRO_CACHE"

_code_fingerprint: str | None = None


def default_cache_dir() -> Path:
    """The cache directory the CLI/tests use unless told otherwise.

    ``$CEDAR_REPRO_CACHE`` when set, else ``.cedar-cache`` under the
    current working directory.
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path(".cedar-cache")


def code_fingerprint() -> str:
    """BLAKE2 digest of the code that produced a result.

    Covers every ``.py`` file under ``src/repro``, the project's
    ``pyproject.toml`` (a dependency pin or build-config change can
    alter results without touching model source), and the running
    interpreter's ``major.minor`` version.  Computed once per process;
    part of every cell key so that results simulated by one version of
    the model are never served to another.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.blake2b(digest_size=16)
        for path in sorted(root.rglob("*.py"), key=lambda p: p.relative_to(root).as_posix()):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        # src/repro -> src -> repo root (absent for an installed tree).
        pyproject = root.parent.parent / "pyproject.toml"
        if pyproject.is_file():
            digest.update(b"pyproject.toml\x00")
            digest.update(pyproject.read_bytes())
            digest.update(b"\x00")
        digest.update(
            f"python/{sys.version_info.major}.{sys.version_info.minor}".encode()
        )
        # The compiled dispatch loop produces bit-identical results by
        # construction, but a cache entry must still never cross the
        # pure/compiled boundary: a stale or miscompiled extension
        # would otherwise poison results attributed to the pure loop
        # (and vice versa).  Fold in whether the compiled loop is
        # active, its version, and the built artifact's bytes.
        from repro.sim import core as _core

        if _core.compiled_loop_active():
            digest.update(f"corefast/{_core.compiled_loop_version()}\x00".encode())
            for ext in sorted(root.glob("sim/_corefast*.so")):
                digest.update(ext.name.encode())
                digest.update(b"\x00")
                digest.update(ext.read_bytes())
                digest.update(b"\x00")
        else:
            digest.update(b"corefast/none\x00")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def cell_key(spec: CellSpec, code: str | None = None) -> str:
    """Content fingerprint of one sweep cell.

    *spec* is a :class:`~repro.parallel.executor.CellSpec`; *code*
    overrides :func:`code_fingerprint` (the property-test seam).
    """
    campaign = spec.campaign.to_dict() if spec.campaign is not None else None
    # Scenario cells are keyed by the *document digest*, never the
    # display name: two different scenario files that happen to share a
    # name can never collide, and renaming a document without changing
    # its program does not change its key beyond the name field itself.
    scenario = getattr(spec, "scenario", None)
    scenario_digest = (
        hashlib.blake2b(scenario.encode("utf-8"), digest_size=16).hexdigest()
        if scenario is not None
        else None
    )
    payload = {
        "schema": KEY_SCHEMA,
        "app": spec.app,
        "n_processors": spec.n_processors,
        # repr() keeps the full precision of the float: 0.1 and
        # 0.1000000000000001 are different workloads.
        "scale": repr(float(spec.scale)),
        "seed": spec.seed,
        "campaign": campaign,
        "scenario": scenario_digest,
        "statfx_interval_ns": spec.statfx_interval_ns,
        "max_events": spec.max_events,
        "max_sim_time": spec.max_sim_time,
        "fingerprint_schedule": spec.fingerprint_schedule,
        "code": code if code is not None else code_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


class ResultCache:
    """On-disk store of detached cell results, keyed by :func:`cell_key`.

    Layout: ``<dir>/<key[:2]>/<key>.pkl``.  Each file pickles an
    envelope ``{"schema", "key", "digest", "payload"}`` where
    ``payload`` is the inner pickle of the snapshot and ``digest`` its
    BLAKE2 checksum; :meth:`get` re-verifies all three before serving.
    """

    #: Consecutive write failures before the cache stops trying writes.
    MAX_WRITE_ERRORS = 3

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.puts = 0
        self.write_errors = 0
        self.quarantined = 0
        #: Writes disabled after repeated failures (degrade-to-off).
        self.disabled = False
        self._consecutive_write_errors = 0
        self._warned_write = False

    def path_for(self, key: str) -> Path:
        """Where the entry for *key* lives (whether or not it exists)."""
        return self.directory / key[:2] / f"{key}.pkl"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt envelope aside so it is never re-read.

        Best-effort: if even the move fails (read-only disk), the entry
        stays in place and simply keeps counting as corrupt on reads.
        """
        target = self.directory / "quarantine" / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            return
        self.quarantined += 1

    def get(self, key: str) -> "RunResult | None":
        """The cached result for *key*, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            envelope = pickle.loads(raw)
            if not isinstance(envelope, dict):
                raise ValueError("cache envelope is not a dict")
            if envelope.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"bad cache schema {envelope.get('schema')!r}")
            if envelope.get("key") != key:
                raise ValueError("cache entry key mismatch")
            payload = envelope["payload"]
            digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
            if digest != envelope.get("digest"):
                raise ValueError("cache payload digest mismatch")
            result = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any damage means "not cached"
            self.corrupt += 1
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: "RunResult") -> Path | None:
        """Store a detached *result* under *key* (atomic replace).

        Returns the entry path, or ``None`` when the write failed or
        writes are disabled.  A cache write failure (ENOSPC, EROFS,
        ...) must never abort the sweep that produced the result: it is
        counted, warned about once, and the sweep continues cache-less.
        """
        if self.disabled:
            return None
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "digest": hashlib.blake2b(payload, digest_size=16).hexdigest(),
            "payload": payload,
        }
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL))
            os.replace(tmp, path)
        except OSError as exc:
            self.write_errors += 1
            self._consecutive_write_errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            if not self._warned_write:
                self._warned_write = True
                warnings.warn(
                    f"result cache write to {self.directory} failed "
                    f"({type(exc).__name__}: {exc}); continuing without "
                    f"caching this result",
                    RuntimeWarning,
                    stacklevel=2,
                )
            if self._consecutive_write_errors >= self.MAX_WRITE_ERRORS:
                self.disabled = True
                warnings.warn(
                    f"result cache at {self.directory} disabled after "
                    f"{self._consecutive_write_errors} consecutive write "
                    f"failures; the sweep continues cache-off",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return None
        self._consecutive_write_errors = 0
        self.puts += 1
        return path

    def collect(self, registry: MetricsRegistry) -> None:
        """Fold the hit/miss counters into ``cache.*`` metrics."""
        registry.counter("cache.hits").inc(self.hits)
        registry.counter("cache.misses").inc(self.misses)
        registry.counter("cache.corrupt").inc(self.corrupt)
        registry.counter("cache.puts").inc(self.puts)
        registry.counter("cache.write_errors").inc(self.write_errors)
        registry.counter("cache.quarantined").inc(self.quarantined)
        registry.gauge("cache.disabled").set(1 if self.disabled else 0)
