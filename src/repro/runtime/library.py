"""The Cedar Fortran runtime-library model.

Implements the execution protocol of Section 2:

* The runtime creates one **helper task** per non-master cluster.  A
  helper spin-waits on the ``sdoall_activity_lock`` in global memory;
  when the main task posts a spread loop, the helper sees the post
  (after its polling latency), joins, works, detaches and goes back to
  spinning.
* **SDOALL/CDOALL**: outer iterations are self-scheduled *one at a
  time* to each cluster task through a global-memory lock (one
  requester per cluster), and each outer iteration's inner CDOALL is
  spread over the cluster's 8 CEs via the concurrency control bus,
  creating no network traffic.
* **XDOALL**: one lead CE per cluster enters, activating all CEs; every
  CE independently issues test&set requests to the global-memory lock
  protecting the loop iteration index -- the source of the xdoall
  distribution overhead and of global-memory/network contention.
* After every spread loop the main task **spin-waits at a barrier**
  until all helpers that entered the loop have detached.

All protocol steps post the instrumentation events of Section 4 to the
``cedarhpm`` monitor, so the analysis in :mod:`repro.core` can run the
paper's methodology on the traces.
"""

from __future__ import annotations

from collections.abc import Generator, Sequence

from repro.hardware.machine import CedarMachine
from repro.hpm.activity import ActivityBoard
from repro.hpm.events import EventType
from repro.hpm.monitor import CedarHpm
from repro.runtime.fastpath import LeanLock, RuntimeFastPath
from repro.runtime.loops import LoopConstruct, ParallelLoop, Phase, SerialPhase
from repro.runtime.params import RuntimeParams
from repro.sim import ArbitratedResource, DeadlockSuspected, Event, Resource, Simulator
from repro.xylem.kernel import XylemKernel
from repro.xylem.task import ClusterTask, XylemProcess, create_process

__all__ = ["CedarFortranRuntime", "RuntimeStats"]


class RuntimeStats:
    """Always-on counters of runtime-library protocol activity.

    Harvested into the ``runtime.*`` namespace of the ``repro.obs``
    metrics registry after a run.
    """

    __slots__ = (
        "loops_posted",
        "helper_joins",
        "sdoall_pickups",
        "xdoall_pickups",
        "barriers",
        "serial_sections",
        "mc_loops",
        "detaches",
    )

    def __init__(self) -> None:
        self.loops_posted = 0
        self.helper_joins = 0
        self.sdoall_pickups = 0
        self.xdoall_pickups = 0
        self.barriers = 0
        self.serial_sections = 0
        self.mc_loops = 0
        self.detaches = 0


class _CombiningNode:
    """One node of a software combining tree (Yew, Tzeng & Lawrie)."""

    __slots__ = ("lock", "arrivals", "size")

    def __init__(self, sim: Simulator, size: int) -> None:
        self.lock = ArbitratedResource(sim, capacity=1)
        self.arrivals = 0
        self.size = size


class _LoopState:
    """Shared state of one posted loop (lives in global memory)."""

    __slots__ = (
        "loop",
        "seq",
        "next_outer",
        "next_iter",
        "expected_detaches",
        "detaches",
        "all_detached",
        "barrier_lock",
        "lean_barrier",
        "_tree_nodes",
        "_sim",
    )

    def __init__(self, sim: Simulator, loop: ParallelLoop, seq: int, n_helpers: int) -> None:
        self.loop = loop
        self.seq = seq
        self.next_outer = 0
        self.next_iter = 0
        self.expected_detaches = n_helpers
        self.detaches = 0
        self.all_detached: Event = sim.event()
        #: Central barrier counter lock: detaching tasks RMW a single
        #: global-memory location, so detaches serialise here -- the
        #: hot-spot seed the paper's clustering discussion worries
        #: about for a flat 32-task machine.  Arbitrated so same-instant
        #: detaches resolve by task id, not event-queue insertion order.
        self.barrier_lock = ArbitratedResource(sim, capacity=1)
        #: Closed-form twin of ``barrier_lock``, used when the runtime
        #: fast path is armed (flat barriers only).
        self.lean_barrier = LeanLock(sim)
        self._tree_nodes: dict[tuple[int, int], _CombiningNode] = {}
        self._sim = sim
        if n_helpers == 0:
            # Single trigger: with no helpers, detach() can never reach
            # the expected count, so this is the only trigger site.
            self.all_detached.succeed()  # cdr: noqa[CDR004]

    def tree_node(self, level: int, group: int, fanout: int) -> "_CombiningNode":
        """Lazily materialise a software-combining-tree node.

        Level 0 combines the detaching tasks themselves; each higher
        level combines the representatives of the level below.
        """
        key = (level, group)
        node = self._tree_nodes.get(key)
        if node is None:
            items = self.expected_detaches
            for _ in range(level):
                items = (items + fanout - 1) // fanout
            size = min(fanout, items - group * fanout)
            node = _CombiningNode(self._sim, max(1, size))
            self._tree_nodes[key] = node
        return node

    def take_outer(self) -> int | None:
        """Claim the next SDOALL outer iteration (caller holds the lock)."""
        if self.next_outer >= self.loop.n_outer:
            return None
        index = self.next_outer
        self.next_outer += 1
        return index

    def take_iteration(self) -> int | None:
        """Claim the next XDOALL iteration (caller holds the lock)."""
        if self.next_iter >= self.loop.n_inner:
            return None
        index = self.next_iter
        self.next_iter += 1
        return index

    def detach(self) -> None:
        """One helper task detached at the finish barrier."""
        self.detaches += 1
        if self.detaches == self.expected_detaches:
            # Single trigger: the == guard fires exactly once and only
            # when expected_detaches > 0 (else the constructor triggered).
            self.all_detached.succeed()  # cdr: noqa[CDR004]


class CedarFortranRuntime:
    """Executes a phase sequence on a simulated Cedar machine."""

    def __init__(
        self,
        sim: Simulator,
        machine: CedarMachine,
        kernel: XylemKernel,
        hpm: CedarHpm | None = None,
        board: ActivityBoard | None = None,
        params: RuntimeParams | None = None,
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.kernel = kernel
        self.hpm = hpm
        self.board = board
        self.params = params or RuntimeParams()
        config = machine.config
        self.config = config
        #: Lock protecting the XDOALL loop iteration index (global
        #: memory).  Arbitrated: when several CEs' test&set requests
        #: land in the same nanosecond, the grant resolves by CE id
        #: rather than event-queue insertion order, so iteration
        #: assignment is independent of the kernel's tie-breaker (the
        #: hazard class ``repro.analyze.race`` checks for).
        self._iter_lock = ArbitratedResource(sim, capacity=1)
        #: Lock protecting the SDOALL outer iteration index (same
        #: tie-stable arbitration, keyed by cluster task id).
        self._outer_lock = ArbitratedResource(sim, capacity=1)
        #: Analytic fast-path engine: lean locks and spawn fusion, armed
        #: only for sink-free unperturbed runs (fault campaigns sticky-
        #: disable it before the run starts).
        self.fastpath = RuntimeFastPath(sim)
        #: Closed-form twins of the two self-scheduling locks above.
        self._lean_outer = LeanLock(sim)
        self._lean_iter = LeanLock(sim)
        self._post_event: Event = sim.event()
        self._loop_seq = 0
        self.process: XylemProcess | None = None
        self.stats = RuntimeStats()

    # -- small helpers ------------------------------------------------------

    def _lead_ce(self, task: ClusterTask) -> int:
        return task.cluster_id * self.config.ces_per_cluster

    def _record(
        self, event_type: EventType, ce_id: int, task: ClusterTask, payload: object = None
    ) -> None:
        if self.hpm is not None:
            self.hpm.record(event_type, ce_id, task_id=task.cluster_id, payload=payload)

    def _set_active(self, ce_id: int) -> None:
        if self.board is not None:
            self.board.set_active(ce_id)

    def _set_idle(self, ce_id: int, task: ClusterTask) -> None:
        # The lead CE of a gang-scheduled task never halts: it is the
        # one spinning for work or at barriers, which statfx counts as
        # the per-cluster baseline concurrency of 1 (Section 7).
        if self.board is not None and ce_id != self._lead_ce(task):
            self.board.set_idle(ce_id)

    def _round_trips_ns(self, n: float) -> int:
        """Cost of *n* scalar global-memory round trips at current load."""
        return int(round(n * self.machine.global_round_trip_ns()))

    def _await_pickup(self, request, lock: Resource, state: _LoopState, kind: str) -> Generator:
        """Wait for a self-scheduling lock, honouring the pickup deadline.

        On expiry the still-queued request is withdrawn (``release`` on
        an unacquired request removes it from the wait queue) before
        :class:`DeadlockSuspected` is raised, so the lock's queue is not
        corrupted for the remaining contenders.
        """
        deadline = self.params.pickup_deadline_ns
        if deadline is None:
            yield request
            return
        yield request | self.sim.timeout(deadline)
        if not request.triggered:
            lock.release(request)
            raise DeadlockSuspected(
                where=f"{kind} pickup seq={state.seq} ({state.loop.label})",
                waited_ns=deadline,
                sim_time_ns=self.sim.now,
                detail=f"{lock.queue_length} requests still queued",
            )

    def _cycles_ns(self, cycles: int) -> int:
        return self.config.cycles_to_ns(cycles)

    def _pickup_hold_ns(self, _waiting: int = 0) -> int:
        """Self-scheduling pickup hold, priced at the grant tick.

        Same arithmetic (and the same ``global_round_trip_ns`` ledger
        side effect) as the exact path's post-grant pricing.
        """
        return self._round_trips_ns(self.params.pickup_round_trips) + self._cycles_ns(
            self.params.pickup_overhead_cycles
        )

    def _xdoall_hold_ns(self, waiting: int) -> int:
        """XDOALL pickup hold, inflated by the spinning CEs' test&set
        retries hammering the lock's memory module (hot spot)."""
        hold_ns = self._pickup_hold_ns()
        return int(hold_ns * (1.0 + self.params.pickup_retry_factor * waiting))

    def _run_child(self, gen: Generator) -> Generator:
        """Run a strictly-sequential child generator.

        When the fast path is armed the child is handed straight back
        to the caller's ``yield from`` -- no process object, no
        ``Initialize`` event, no termination event, and (because this
        is a plain function, not a generator) no wrapper frame on the
        delegation chain either -- which is exact for children awaited
        immediately: every delay the child yields still elapses at the
        same times, only the same-tick spawn/termination bookkeeping
        events disappear.  Otherwise the child is spawned as a process,
        reproducing the exact event shape.  Call sites must ``yield
        from`` the return value immediately (the arming check happens
        here, at call time).
        """
        fp = self.fastpath
        if fp.on:
            fp.stats.fused_spawns += 1
            return gen
        return self._spawn_child(gen)

    def _spawn_child(self, gen: Generator) -> Generator:
        """Exact-path child execution: a real process, full event shape."""
        result = yield self.sim.process(gen)
        return result

    # -- program execution -----------------------------------------------------

    def run_program(self, phases: Sequence[Phase]):
        """Start the program; returns a process whose value is CT (ns)."""
        return self.sim.process(self._main(list(phases)), name="main-task")

    def _main(self, phases: list[Phase]) -> Generator:
        sim = self.sim
        self.kernel.start_daemons()
        process = yield sim.process(
            create_process(sim, self.config, self.kernel), name="create-process"
        )
        self.process = process
        main = process.main_task
        self._record(EventType.PROGRAM_START, self._lead_ce(main), main)
        for task in process.tasks:
            self._set_active(self._lead_ce(task))
        helper_posts = self._post_event
        for task in process.helper_tasks:
            sim.process(self._helper_loop(task, helper_posts), name=f"helper-{task.task_id}")
        for phase in phases:
            if isinstance(phase, SerialPhase):
                yield from self._serial(main, phase)
            elif phase.is_main_cluster_only:
                yield from self._main_cluster_loop(main, phase)
            else:
                yield from self._spread_loop(main, phase)
        # Program end: release the helpers from their spin loops.
        self._broadcast(None)
        self._record(EventType.PROGRAM_END, self._lead_ce(main), main)
        if self.board is not None:
            for task in process.tasks:
                self.board.set_idle(self._lead_ce(task))
        return sim.now

    def _broadcast(self, state: _LoopState | None) -> Event:
        """Post *state* to the helpers; returns the next post event."""
        event, self._post_event = self._post_event, self.sim.event()
        # Single trigger: the pending post event is swapped out before
        # being triggered, so each broadcast event fires exactly once.
        event.succeed((state, self._post_event))  # cdr: noqa[CDR004]
        return self._post_event

    # -- serial sections ---------------------------------------------------------

    def _serial(self, main: ClusterTask, phase: SerialPhase) -> Generator:
        lead = self._lead_ce(main)
        self._record(EventType.SERIAL_START, lead, main, payload=phase.label)
        self.stats.serial_sections += 1
        for _ in range(phase.syscalls):
            yield from self._run_child(self.kernel.cluster_syscall(main.cluster_id))
        if phase.n_pages > 0 and phase.page_base >= 0:
            pages = range(phase.page_base, phase.page_base + phase.n_pages)
            yield from self._run_child(self.kernel.vm.touch_many(main.cluster_id, pages))
        if phase.mem_words > 0:
            yield from self._run_child(
                self.machine.memory_burst(phase.mem_words, phase.mem_rate, main.cluster_id)
            )
        if phase.work_ns > 0:
            yield from self._run_child(self.kernel.execute(main.cluster_id, phase.work_ns))
        self._record(EventType.SERIAL_END, lead, main, payload=phase.label)

    # -- main cluster-only loops ----------------------------------------------------

    def _main_cluster_loop(self, main: ClusterTask, loop: ParallelLoop) -> Generator:
        lead = self._lead_ce(main)
        payload = (None, loop.construct.value, loop.label)
        self._record(EventType.MC_LOOP_START, lead, main, payload=payload)
        self.stats.mc_loops += 1
        yield from self._run_cdoall(main, loop, outer=0, seq=None)
        self._record(EventType.MC_LOOP_END, lead, main, payload=payload)

    # -- spread loops (SDOALL / XDOALL) -------------------------------------------------

    def _spread_loop(self, main: ClusterTask, loop: ParallelLoop) -> Generator:
        sim = self.sim
        lead = self._lead_ce(main)
        seq = self._loop_seq
        self._loop_seq += 1
        payload = (seq, loop.construct.value, loop.label)

        # Set up loop parameters in global memory.
        self._record(EventType.SETUP_ENTER, lead, main, payload=payload)
        setup_ns = self._round_trips_ns(self.params.setup_round_trips) + self._cycles_ns(
            self.params.setup_overhead_cycles
        )
        yield setup_ns
        self._record(EventType.SETUP_EXIT, lead, main, payload=payload)

        # Post the loop: helpers will see it after their poll latency.
        assert self.process is not None
        state = _LoopState(sim, loop, seq, n_helpers=len(self.process.helper_tasks))
        yield self._round_trips_ns(1.0)
        self._record(EventType.LOOP_POST, lead, main, payload=payload)
        self.stats.loops_posted += 1
        self._broadcast(state)

        # The main task participates like any cluster task.
        if loop.construct is LoopConstruct.XDOALL:
            yield from self._participate_xdoall(main, state)
        else:
            yield from self._participate_sdoall(main, state)

        # Finish barrier: spin until every helper that entered detached.
        self._record(EventType.BARRIER_ENTER, lead, main, payload=payload)
        deadline = self.params.barrier_deadline_ns
        if deadline is None:
            yield state.all_detached
        else:
            yield state.all_detached | sim.timeout(deadline)
            if not state.all_detached.triggered:
                raise DeadlockSuspected(
                    where=f"spread-loop barrier seq={seq} ({loop.label})",
                    waited_ns=deadline,
                    sim_time_ns=sim.now,
                    detail=(
                        f"{state.detaches}/{state.expected_detaches} helpers detached"
                    ),
                )
        detect_ns = self._cycles_ns(self.params.barrier_check_cycles // 2)
        detect_ns += self._round_trips_ns(1.0)
        yield detect_ns
        self._record(EventType.BARRIER_EXIT, lead, main, payload=payload)
        self.stats.barriers += 1

    def _helper_loop(self, task: ClusterTask, first_post: Event) -> Generator:
        sim = self.sim
        lead = self._lead_ce(task)
        post = first_post
        while True:
            self._record(EventType.WAIT_WORK_ENTER, lead, task)
            state, next_post = yield post
            post = next_post
            self._record(EventType.WAIT_WORK_EXIT, lead, task)
            if state is None:
                return
            # Polling latency before the post is noticed, plus the cost
            # of joining the loop.
            poll_ns = self._cycles_ns(self.params.spin_check_cycles // 2)
            join_ns = self._round_trips_ns(self.params.join_round_trips)
            yield poll_ns + join_ns
            payload = (state.seq, state.loop.construct.value, state.loop.label)
            self._record(EventType.HELPER_JOIN, lead, task, payload=payload)
            self.stats.helper_joins += 1
            if state.loop.construct is LoopConstruct.XDOALL:
                yield from self._participate_xdoall(task, state)
            else:
                yield from self._participate_sdoall(task, state)
            # Detach at the finish barrier.
            yield from self._detach_barrier(state, task)
            self._record(EventType.LOOP_DETACH, lead, task, payload=payload)
            self.stats.detaches += 1
            state.detach()

    def _detach_barrier(self, state: _LoopState, task: ClusterTask) -> Generator:
        """Process: perform one task's barrier-detach bookkeeping.

        With the flat organisation (``barrier_fanout is None``) every
        detaching task RMWs the central counter in global memory, so
        detaches serialise at its lock; with a software combining tree
        (Yew, Tzeng & Lawrie) tasks combine within fanout-sized groups
        and only the last arriver of a group ascends, trading a few
        extra round trips of depth for the removal of the hot spot.
        """
        sim = self.sim
        fanout = self.params.barrier_fanout
        rmw_ns = self._round_trips_ns(self.params.detach_round_trips)
        if fanout is None:
            fp = self.fastpath
            if fp.on:
                # Closed form: the serialised RMWs settle through the
                # lean lock, one completion event per detacher instead
                # of request/grant/hold/arbitration round trips.  The
                # RMW cost was priced at entry (above), exactly like
                # the exact path's captured constant.
                fp.stats.lean_barrier_detaches += 1
                yield from state.lean_barrier.serve(task.task_id, lambda _w: rmw_ns)
                return
            fp.stats.exact_barrier_detaches += 1
            fp.stats.fallback_disarmed += 1
            request = state.barrier_lock.request(key=task.task_id)
            yield request
            yield rmw_ns
            state.barrier_lock.release(request)
            return
        self.fastpath.stats.exact_barrier_detaches += 1
        self.fastpath.stats.fallback_shape += 1
        n_tasks = state.expected_detaches
        level = 0
        index = task.task_id - 1 if task.task_id > 0 else 0
        items = n_tasks
        while True:
            group = index // fanout
            node = state.tree_node(level, group, fanout)
            request = node.lock.request(key=task.task_id)
            yield request
            yield rmw_ns
            node.arrivals += 1
            last_of_group = node.arrivals == node.size
            node.lock.release(request)
            items = (items + fanout - 1) // fanout
            if not last_of_group or items <= 1:
                return
            index = group
            level += 1

    # -- SDOALL/CDOALL execution -----------------------------------------------------

    def _participate_sdoall(self, task: ClusterTask, state: _LoopState) -> Generator:
        """Cluster task self-schedules outer iterations, one at a time."""
        sim = self.sim
        lead = self._lead_ce(task)
        payload = (state.seq, state.loop.construct.value, state.loop.label)
        while True:
            self._record(EventType.PICKUP_ENTER, lead, task, payload=payload)
            fp = self.fastpath
            if fp.on and self.params.pickup_deadline_ns is None:
                fp.stats.lean_pickups += 1
                yield from self._lean_outer.serve(task.task_id, self._pickup_hold_ns)
                outer = state.take_outer()
            else:
                fp.stats.exact_pickups += 1
                if fp.on:
                    fp.stats.fallback_shape += 1
                else:
                    fp.stats.fallback_disarmed += 1
                request = self._outer_lock.request(key=task.task_id)
                yield from self._await_pickup(request, self._outer_lock, state, "sdoall")
                hold_ns = self._round_trips_ns(self.params.pickup_round_trips)
                hold_ns += self._cycles_ns(self.params.pickup_overhead_cycles)
                yield hold_ns
                outer = state.take_outer()
                self._outer_lock.release(request)
            self.stats.sdoall_pickups += 1
            self._record(EventType.PICKUP_EXIT, lead, task, payload=payload)
            if outer is None:
                return
            yield from self._run_cdoall(task, state.loop, outer=outer, seq=state.seq)

    def _run_cdoall(
        self, task: ClusterTask, loop: ParallelLoop, outer: int, seq: int | None
    ) -> Generator:
        """Spread ``loop.n_inner`` iterations over the cluster's CEs."""
        sim = self.sim
        cluster = self.machine.clusters[task.cluster_id]
        yield cluster.ccbus.dispatch_ns()
        # Only configured CEs receive iterations: Xylem may have
        # deconfigured some (fault injection), and the concurrency
        # control bus simply dispatches over the survivors.
        ces = [ce for ce in cluster.ces if self.kernel.ce_available(ce.ce_id)]
        n_ces = len(ces)
        if (
            loop.construct is LoopConstruct.CDOACROSS
            and loop.dependence_distance > 0
        ):
            # Iteration i waits for i - distance: at most `distance`
            # iterations are in flight, so only that many CEs can work.
            n_ces = min(n_ces, loop.dependence_distance)
        chunk = (loop.n_inner + n_ces - 1) // n_ces
        workers = []
        for local in range(n_ces):
            lo = local * chunk
            hi = min(lo + chunk, loop.n_inner)
            if lo >= hi:
                break
            ce_id = ces[local].ce_id
            workers.append(
                sim.process(
                    self._cdoall_chunk(task, loop, outer, seq, ce_id, lo, hi),
                    name=f"cdoall-ce{ce_id}",
                )
            )
        yield sim.all_of(workers)
        # CDOACROSS: the serialised residue runs on the lead CE.
        if loop.serial_fraction > 0.0:
            residue = int(loop.n_inner * loop.work_ns_per_iter * loop.serial_fraction)
            yield from self._run_child(self.kernel.execute(task.cluster_id, residue))
        yield cluster.ccbus.synchronise_ns()

    def _cdoall_chunk(
        self,
        task: ClusterTask,
        loop: ParallelLoop,
        outer: int,
        seq: int | None,
        ce_id: int,
        lo: int,
        hi: int,
    ) -> Generator:
        """One CE's contiguous chunk of an inner CDOALL."""
        sim = self.sim
        n_iters = hi - lo
        payload = (seq, loop.construct.value, loop.label, n_iters)
        self._set_active(ce_id)
        self._record(EventType.ITER_START, ce_id, task, payload=payload)
        pages = self._pages_for_chunk(loop, outer, lo, hi)
        if pages:
            yield from self._run_child(self.kernel.vm.touch_many(task.cluster_id, pages))
        words = n_iters * loop.mem_words_per_iter
        parallel_fraction = 1.0 - loop.serial_fraction
        multiplier = loop.work_multiplier(outer, salt=seq or 0)
        work_ns = int(n_iters * loop.work_ns_per_iter * parallel_fraction * multiplier)
        # Vector loop bodies alternate gather / compute / scatter, so
        # the chunk's global traffic interleaves with its computation.
        slices = max(1, self.params.chunk_slices)
        stall_ns = self.machine.cache_stall_ns(
            task.cluster_id,
            bytes_accessed=loop.cluster_ws_bytes * n_iters // loop.n_inner,
            ws_bytes=loop.cluster_ws_bytes,
        )
        if stall_ns > 0:
            yield stall_ns
        for index in range(slices):
            slice_words = words // slices + (1 if index < words % slices else 0)
            if slice_words > 0:
                yield from self._run_child(
                    self.machine.memory_burst(slice_words, loop.mem_rate, task.cluster_id)
                )
            slice_work = work_ns // slices + (1 if index < work_ns % slices else 0)
            if slice_work > 0:
                yield from self._run_child(self.kernel.execute(task.cluster_id, slice_work))
        self._record(EventType.ITER_END, ce_id, task, payload=payload)
        self._set_idle(ce_id, task)

    @staticmethod
    def _pages_for_chunk(loop: ParallelLoop, outer: int, lo: int, hi: int) -> list[int]:
        if loop.page_base < 0:
            return []
        pages = []
        for inner in range(lo, hi):
            page = loop.page_for_iteration(outer, inner)
            if page is not None and (not pages or pages[-1] != page):
                pages.append(page)
        return pages

    # -- XDOALL execution -------------------------------------------------------------

    def _participate_xdoall(self, task: ClusterTask, state: _LoopState) -> Generator:
        """All CEs of the cluster compete for iterations individually."""
        sim = self.sim
        cluster = self.machine.clusters[task.cluster_id]
        yield cluster.ccbus.dispatch_ns()
        workers = [
            sim.process(
                self._xdoall_ce(task, state, ce.ce_id),
                name=f"xdoall-ce{ce.ce_id}",
            )
            for ce in cluster.ces
            if self.kernel.ce_available(ce.ce_id)
        ]
        yield sim.all_of(workers)
        # The cluster's CEs synchronise over the concurrency control
        # bus; one of them continues into the runtime library.
        yield cluster.ccbus.synchronise_ns()

    def _xdoall_ce(self, task: ClusterTask, state: _LoopState, ce_id: int) -> Generator:
        sim = self.sim
        loop = state.loop
        payload = (state.seq, loop.construct.value, loop.label, 1)
        while True:
            if not self.kernel.ce_available(ce_id):
                # The CE was deconfigured mid-loop: it stops picking up
                # iterations; the survivors self-schedule the rest.
                break
            # Pick the next iteration: test&set on the global-memory
            # lock protecting the loop index.  Every CE does this
            # individually, so the requests contend in the network and
            # serialise at the lock (Section 6).  Time spent here is
            # distribution overhead, not useful work: the CE does not
            # count as "active" for statfx, which is why the measured
            # parallel-loop concurrency of XDOALL codes drops below 8
            # per cluster (Table 3).
            self._record(EventType.PICKUP_ENTER, ce_id, task, payload=payload)
            fp = self.fastpath
            if fp.on and self.params.pickup_deadline_ns is None:
                # Lean pickup: the post-grant queue length the inflation
                # term needs is known at the lean lock's grant commit,
                # so the whole request/grant/hold/release exchange
                # collapses to one completion event.
                fp.stats.lean_pickups += 1
                yield from self._lean_iter.serve(ce_id, self._xdoall_hold_ns)
                index = state.take_iteration()
            else:
                fp.stats.exact_pickups += 1
                if fp.on:
                    fp.stats.fallback_shape += 1
                else:
                    fp.stats.fallback_disarmed += 1
                request = self._iter_lock.request(key=ce_id)
                yield from self._await_pickup(request, self._iter_lock, state, "xdoall")
                hold_ns = self._round_trips_ns(self.params.pickup_round_trips)
                hold_ns += self._cycles_ns(self.params.pickup_overhead_cycles)
                # CEs spinning for the lock keep hammering its module
                # with test&set reads, slowing the holder's RMW down
                # (hot spot).
                waiting = self._iter_lock.queue_length
                hold_ns = int(hold_ns * (1.0 + self.params.pickup_retry_factor * waiting))
                yield hold_ns
                index = state.take_iteration()
                self._iter_lock.release(request)
            self.stats.xdoall_pickups += 1
            self._record(EventType.PICKUP_EXIT, ce_id, task, payload=payload)
            if index is None:
                break
            page = loop.page_for_iteration(0, index)
            if page is not None:
                yield from self._run_child(self.kernel.vm.touch(task.cluster_id, page))
            stall_ns = self.machine.cache_stall_ns(
                task.cluster_id,
                bytes_accessed=loop.cluster_ws_bytes // loop.n_inner,
                ws_bytes=loop.cluster_ws_bytes,
            )
            if stall_ns > 0:
                yield stall_ns
            self._set_active(ce_id)
            self._record(EventType.ITER_START, ce_id, task, payload=payload)
            if loop.mem_words_per_iter > 0:
                yield from self._run_child(
                    self.machine.memory_burst(
                        loop.mem_words_per_iter, loop.mem_rate, task.cluster_id
                    )
                )
            if loop.work_ns_per_iter > 0:
                work_ns = int(
                    loop.work_ns_per_iter * loop.work_multiplier(index, salt=state.seq)
                )
                yield from self._run_child(self.kernel.execute(task.cluster_id, work_ns))
            self._record(EventType.ITER_END, ce_id, task, payload=payload)
            self._set_idle(ce_id, task)
