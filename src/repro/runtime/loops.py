"""Parallel-loop and phase descriptors for Cedar Fortran programs.

Cedar Fortran exposes loop-level parallelism through two constructs
(Section 2): the hierarchical ``SDOALL``/``CDOALL`` nest, whose outer
iterations are self-scheduled one at a time to each cluster task and
whose inner iterations spread over the cluster's 8 CEs via the
concurrency control bus, and the flat ``XDOALL``, in which every CE of
the machine independently picks iterations by test&set on a
global-memory lock.  Applications also contain a few *main
cluster-only* loops (``CDOALL``/``CDOACROSS`` without an outer spread
loop).

The descriptors here say nothing about *how* loops execute -- that is
:mod:`repro.runtime.library`'s job; they describe the shape and cost of
the work, and are what the application models in :mod:`repro.apps` are
made of.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "LoopConstruct",
    "ParallelLoop",
    "SerialPhase",
    "Phase",
]


class LoopConstruct(enum.Enum):
    """Which runtime construct executes a parallel loop."""

    #: Hierarchical spread/cluster nest: outer iterations per cluster,
    #: inner iterations over the cluster's CEs via the CC bus.
    SDOALL = "sdoall"
    #: Flat loop: every CE picks iterations from a global-memory lock.
    XDOALL = "xdoall"
    #: Main cluster-only loop (CDOALL without an outer spread loop).
    CLUSTER_ONLY = "cluster_only"
    #: Main cluster-only loop with serialised regions (CDOACROSS).
    CDOACROSS = "cdoacross"


#: Constructs executed only by the cluster running the main task.
MAIN_CLUSTER_ONLY = frozenset({LoopConstruct.CLUSTER_ONLY, LoopConstruct.CDOACROSS})


@dataclass(frozen=True)
class ParallelLoop:
    """One parallel loop of an application.

    Parameters
    ----------
    construct:
        Runtime construct used.
    n_outer:
        SDOALL outer (spread) iteration count.  Unused by XDOALL and
        cluster-only loops.
    n_inner:
        Iterations of the inner/flat loop body.  For SDOALL this is the
        CDOALL trip count of *each* outer iteration; for XDOALL and
        cluster-only loops it is the full trip count.
    work_ns_per_iter:
        Pure CE compute time of one iteration (no memory stalls).
    mem_words_per_iter:
        Global-memory words each iteration streams (vector accesses).
    mem_rate:
        Request rate of the streams (requests per CE cycle, <= 1).
    page_base:
        First virtual page the loop's data occupies (page faults are
        generated on first touch).  ``-1`` disables paging for the loop.
    iters_per_page:
        How many consecutive iterations share one data page; values > 1
        make simultaneously-executing CEs touch the same fresh page,
        which is what produces *concurrent* page faults.
    serial_fraction:
        For CDOACROSS only: fraction of each iteration that must run
        serialised.
    work_skew:
        Deterministic per-iteration work variation amplitude in [0, 1):
        real loop bodies are not uniform (boundary iterations, sparse
        rows), which is what makes the self-scheduled clusters finish a
        spread loop at different times and the main task wait at the
        barrier.
    label:
        Stable identifier used in traces.
    """

    construct: LoopConstruct
    n_inner: int
    work_ns_per_iter: int
    n_outer: int = 1
    mem_words_per_iter: int = 0
    mem_rate: float = 0.5
    page_base: int = -1
    iters_per_page: int = 8
    serial_fraction: float = 0.0
    #: CDOACROSS dependence distance: iteration i waits for iteration
    #: i - distance, so at most ``distance`` iterations can run
    #: concurrently (0 means no cross-iteration dependence).
    dependence_distance: int = 0
    work_skew: float = 0.0
    #: Per-cluster working set the loop sweeps through the cluster's
    #: shared data cache (0 disables the optional cache/TLB stall
    #: modelling -- the paper's own accounting excludes it).
    cluster_ws_bytes: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.n_inner <= 0:
            raise ValueError(f"n_inner must be positive, got {self.n_inner}")
        if self.n_outer <= 0:
            raise ValueError(f"n_outer must be positive, got {self.n_outer}")
        if self.work_ns_per_iter < 0:
            raise ValueError("work_ns_per_iter must be >= 0")
        if self.mem_words_per_iter < 0:
            raise ValueError("mem_words_per_iter must be >= 0")
        if not 0.0 < self.mem_rate <= 1.0:
            raise ValueError(f"mem_rate must be in (0, 1], got {self.mem_rate}")
        if self.iters_per_page <= 0:
            raise ValueError("iters_per_page must be positive")
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")
        if not 0.0 <= self.work_skew < 1.0:
            raise ValueError("work_skew must be in [0, 1)")
        if self.cluster_ws_bytes < 0:
            raise ValueError("cluster_ws_bytes must be >= 0")
        if self.dependence_distance < 0:
            raise ValueError("dependence_distance must be >= 0")
        if self.dependence_distance > 0 and self.construct is not LoopConstruct.CDOACROSS:
            raise ValueError("dependence_distance applies to CDOACROSS loops only")
        if self.construct in MAIN_CLUSTER_ONLY and self.n_outer != 1:
            raise ValueError("cluster-only loops have no outer iterations")

    @property
    def is_main_cluster_only(self) -> bool:
        """Whether only the main task's cluster executes this loop."""
        return self.construct in MAIN_CLUSTER_ONLY

    def work_multiplier(self, index: int, salt: int = 0) -> float:
        """Deterministic work-variation multiplier for chunk *index*.

        A cheap integer hash mapped to [1 - work_skew, 1 + work_skew];
        the multiplier is 1.0 when ``work_skew`` is 0.  ``salt``
        distinguishes loop instances so the long iterations land on
        different processors each invocation, as they do in real codes.
        """
        if self.work_skew == 0.0:
            return 1.0
        h = (index * 2654435761 + (salt + 1) * 0x9E3779B9) & 0xFFFF
        return 1.0 + self.work_skew * (h / 32767.5 - 1.0)

    @property
    def total_iterations(self) -> int:
        """Total loop-body executions."""
        return self.n_outer * self.n_inner

    @property
    def total_work_ns(self) -> int:
        """Total pure compute time of the loop body."""
        return self.total_iterations * self.work_ns_per_iter

    def page_for_iteration(self, outer: int, inner: int) -> int | None:
        """Data page touched by iteration (outer, inner), if paging."""
        if self.page_base < 0:
            return None
        index = outer * self.n_inner + inner
        return self.page_base + index // self.iters_per_page

    @property
    def n_pages(self) -> int:
        """Number of data pages the loop touches."""
        if self.page_base < 0:
            return 0
        return (self.total_iterations + self.iters_per_page - 1) // self.iters_per_page


@dataclass(frozen=True)
class SerialPhase:
    """A serial code section executed by the main task's lead CE."""

    work_ns: int
    #: Global-memory words streamed during the section.
    mem_words: int = 0
    mem_rate: float = 0.3
    #: Pages touched while executing the section (sequential faults).
    page_base: int = -1
    n_pages: int = 0
    #: Cluster system calls issued during the section.
    syscalls: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.work_ns < 0:
            raise ValueError("work_ns must be >= 0")
        if self.mem_words < 0:
            raise ValueError("mem_words must be >= 0")
        if self.n_pages < 0:
            raise ValueError("n_pages must be >= 0")
        if self.syscalls < 0:
            raise ValueError("syscalls must be >= 0")
        if not 0.0 < self.mem_rate <= 1.0:
            raise ValueError(f"mem_rate must be in (0, 1], got {self.mem_rate}")


#: A program phase: either serial code or a parallel loop.
Phase = SerialPhase | ParallelLoop
