"""Tunable costs of the Cedar Fortran runtime-library model.

These model the protocol costs of Section 2's runtime description: the
spin polling of helper tasks on the ``sdoall_activity_lock``, the
global-memory test&set cost of picking an iteration, the loop-parameter
setup writes, and barrier detach/detection costs.  All are expressed in
CE cycles or nanoseconds and are deliberately user-visible.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RuntimeParams"]


@dataclass(frozen=True)
class RuntimeParams:
    """Cost parameters of the runtime-library protocol model."""

    #: CE cycles between helper polls of the activity lock ("checking
    #: the sdoall_activity_lock in the global memory every few cycles").
    spin_check_cycles: int = 50
    #: Global-memory round trips per iteration pickup (test&set the
    #: loop-index lock, read/update the index, release).
    pickup_round_trips: float = 4.0
    #: Extra CE cycles of bookkeeping per pickup.
    pickup_overhead_cycles: int = 30
    #: Cost for the main task to set up loop parameters in global
    #: memory before posting a loop (several global writes).
    setup_round_trips: float = 3.0
    #: Extra CE cycles of setup bookkeeping.
    setup_overhead_cycles: int = 60
    #: Cost for a helper to join a posted loop once it sees the post.
    join_round_trips: float = 1.0
    #: Global round trips for a task to detach at a loop finish barrier.
    detach_round_trips: float = 1.0
    #: CE cycles between barrier polls by the spinning main task.
    barrier_check_cycles: int = 50
    #: Compute/memory interleave slices per CDOALL chunk: vector codes
    #: alternate gather/compute/scatter phases, so a chunk's global
    #: traffic is spread through it rather than front-loaded.
    chunk_slices: int = 3
    #: Lock-pickup inflation per waiting CE: CEs spinning on the loop
    #: index lock keep re-reading its global-memory location, slowing
    #: the holder's RMW (the hot-spot effect of Pfister/Norton).
    pickup_retry_factor: float = 0.05
    #: Barrier organisation: ``None`` uses Cedar's flat central counter
    #: in global memory (every detaching task RMWs one location, which
    #: serialises and becomes a hot spot when many tasks synchronise);
    #: an integer >= 2 uses a software combining tree of that fanout
    #: (Yew, Tzeng & Lawrie), where detaches combine within groups and
    #: only group representatives ascend.
    barrier_fanout: int | None = None
    #: Sim-time deadline (ns) for a loop's finish barrier: if the
    #: helpers have not all detached within this window the run raises
    #: :class:`repro.sim.DeadlockSuspected`.  ``None`` waits forever.
    barrier_deadline_ns: int | None = None
    #: Sim-time deadline (ns) for one self-scheduling lock pickup; on
    #: expiry the waiting request is withdrawn and
    #: :class:`repro.sim.DeadlockSuspected` is raised.  ``None`` waits
    #: forever.
    pickup_deadline_ns: int | None = None

    def __post_init__(self) -> None:
        for name in ("spin_check_cycles", "pickup_overhead_cycles",
                     "setup_overhead_cycles", "barrier_check_cycles",
                     "chunk_slices"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("pickup_round_trips", "setup_round_trips",
                     "join_round_trips", "detach_round_trips",
                     "pickup_retry_factor"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.barrier_fanout is not None and self.barrier_fanout < 2:
            raise ValueError(
                f"barrier_fanout must be >= 2 or None, got {self.barrier_fanout}"
            )
        for name in ("barrier_deadline_ns", "pickup_deadline_ns"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None, got {value}")
