"""Analytic fast paths for the runtime-library protocol.

The runtime's hot protocol steps -- SDOALL/XDOALL self-scheduling
pickups and the spread-loop finish-barrier detach -- all follow one
shape on the exact path: request an :class:`repro.sim.ArbitratedResource`,
be granted at the end-of-tick arbitration, hold the lock for a priced
service time, release.  Each occurrence costs a request event, a grant
event, a hold carrier and an arbitration callback.

:class:`LeanLock` collapses that to its closed form.  The grant instant
and hold price of every waiter are fully determined at arbitration
time:

* grants are FIFO by ``(arrival tick, key)`` -- exactly the
  ``ArbitratedResource`` order;
* the hold price is a function of machine state that is constant within
  the grant tick (``CedarMachine.global_round_trip_ns`` prices at the
  load tracker's *settled* view, same value anywhere in the tick) and
  of the post-grant queue length, which cannot change between the
  arbitration and the holder's resume (the grant commit runs in the
  end-of-tick band; the holder's resume is the next normal event).

So the lock schedules the waiter's completion **once**, at
``grant + hold``, and re-arbitrates when the hold elapses: one event
per handoff instead of three, with identical grant order, identical
hold prices and identical completion times.  The Hypothesis suite in
``tests/runtime/test_fastpath_equivalence.py`` pins the equivalence.

:class:`RuntimeFastPath` is the arming seam, mirroring the sticky
disable discipline :mod:`repro.hardware.fastpath` established: the lean
paths (and the spawn-fusion sites in :mod:`repro.runtime.library`) run
only when the environment allows them (:mod:`repro.sim.policy`), no
trace sink is attached, tie-break perturbation is off, and no fault
campaign has sticky-disabled the engine.  Every fallback is counted so
run reports show which paths actually served a run.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from dataclasses import dataclass

from repro.sim import Event, Simulator
from repro.sim.core import _NO_WAITERS
from repro.sim.policy import fastpath_policy

__all__ = ["LeanLock", "RuntimeFastPath", "RuntimeFastPathStats"]


@dataclass
class RuntimeFastPathStats:
    """Lean/exact split of the runtime protocol (``runtime.fastpath.*``
    metrics namespace)."""

    lean_pickups: int = 0
    exact_pickups: int = 0
    lean_barrier_detaches: int = 0
    exact_barrier_detaches: int = 0
    #: Child generators inlined (``yield from``) instead of spawned as
    #: processes: memory bursts, execute slices, page-touch sweeps.
    fused_spawns: int = 0
    #: Operations routed exact because the engine was disarmed (sink,
    #: perturbation, policy, or a fault campaign's sticky disable).
    fallback_disarmed: int = 0
    #: Operations routed exact because a deadline or a combining-tree
    #: barrier was configured (shapes the lean path does not model).
    fallback_shape: int = 0

    @property
    def lean_fraction(self) -> float:
        """Fraction of pickups+detaches served by the lean path."""
        lean = self.lean_pickups + self.lean_barrier_detaches
        total = lean + self.exact_pickups + self.exact_barrier_detaches
        if total == 0:
            return 0.0
        return lean / total


class LeanLock:
    """Closed-form FIFO lock replicating ``ArbitratedResource(capacity=1)``
    plus a priced hold plus release, in one event per handoff.

    Waiters run :meth:`serve` (via ``yield from``).  Grants resolve at
    the end of the arrival tick in ``(arrival, key)`` order; the hold
    price is evaluated at grant time with the post-grant queue length
    (the value the exact path's holder reads after its grant); the
    waiter resumes once the hold has elapsed, with the lock already
    released and the next arbitration armed.
    """

    __slots__ = ("sim", "_waiting", "_busy", "_arb_armed", "grants")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        #: Pending waiters: ``(arrival, key, price, done)`` tuples.
        self._waiting: list[tuple[int, int, Callable[[int], int], Event]] = []
        self._busy = False
        self._arb_armed = False
        self.grants = 0

    @property
    def queue_length(self) -> int:
        """Waiters not yet granted (parity with ``Resource.queue_length``)."""
        return len(self._waiting)

    def serve(self, key: int, price: Callable[[int], int]) -> Generator:
        """Process: acquire in ``(arrival, key)`` order, hold for
        ``price(queue_len_after_grant)`` ns, release.

        Returns the hold that was charged (the exact path's holder
        computes the same value after its grant).
        """
        sim = self.sim
        done = Event(sim)
        self._waiting.append((sim.now, key, price, done))
        if not self._arb_armed and not self._busy:
            self._arb_armed = True
            sim.call_at_tail(self._arbitrate)
        hold = yield done
        return hold

    def _arbitrate(self, _event: Event) -> None:
        """End-of-tick grant commit (same band as ``ArbitratedResource``)."""
        self._arb_armed = False
        if self._busy:
            return
        waiting = self._waiting
        if not waiting:
            return
        best = 0
        if len(waiting) > 1:
            best_order = waiting[0][:2]
            for i in range(1, len(waiting)):
                order = waiting[i][:2]
                if order < best_order:
                    best_order = order
                    best = i
        _arrival, _key, price, done = waiting.pop(best)
        # Post-grant queue length: between this commit and the holder's
        # resume no new request can be processed, so this is the value
        # the exact path's holder reads.
        hold = price(len(waiting))
        self._busy = True
        self.grants += 1
        done._ok = True
        done._value = hold
        waiter = done.callbacks
        if waiter is _NO_WAITERS:
            done.callbacks = self._release
        else:
            # Release runs before the waiter resumes, so a waiter that
            # re-requests immediately queues like a fresh arrival.
            done.callbacks = [self._release, waiter]
        # Single trigger: each waiter's done event is popped from
        # _waiting exactly once (here), and _ok was set just above, so
        # this is the only schedule of this event.
        self.sim.schedule(done, delay=hold)  # cdr: noqa[CDR004]

    def _release(self, _event: Event) -> None:
        """The hold elapsed: free the lock, re-arm arbitration."""
        self._busy = False
        if self._waiting and not self._arb_armed:
            self._arb_armed = True
            self.sim.call_at_tail(self._arbitrate)


class RuntimeFastPath:
    """Arming state + counters for the runtime-layer fast paths."""

    __slots__ = ("sim", "stats", "enabled", "_armed")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.stats = RuntimeFastPathStats()
        #: Sticky switch; cleared only by :meth:`enable` (tests).
        self.enabled = True
        self._armed = fastpath_policy() and sim._sink is None and not sim.tie_perturbed

    @property
    def on(self) -> bool:
        """Whether the lean paths may serve the next operation."""
        return self.enabled and self._armed

    def disable(self) -> None:
        """Sticky disable (armed fault campaign): everything goes exact."""
        self.enabled = False

    def enable(self) -> None:
        """Re-enable after a campaign is torn down (tests).

        Re-arms against the simulator's *current* sink/perturbation
        state, so a run that attached a sink meanwhile stays exact.
        """
        self.enabled = True
        sim = self.sim
        self._armed = fastpath_policy() and sim._sink is None and not sim.tie_perturbed

    @property
    def mode(self) -> str:
        """``"batched"`` or ``"exact"``: which path serves new operations."""
        return "batched" if self.on else "exact"
