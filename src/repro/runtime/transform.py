"""Program transformations the paper's Section 6 proposes.

The barrier-wait analysis suggests *merging several parallel loops in a
row that do not have dependencies among them*, turning a series of
multicluster barriers into a single one -- an optimisation that (with
other manual work) gave a 2x improvement for FLO52 on the real machine.
This module implements that transformation on phase lists so the claim
can be tested on the model (see ``examples/loop_merging.py`` and
``benchmarks/ablations/test_ablation_loop_merging.py``).
"""

from __future__ import annotations

from repro.runtime.loops import LoopConstruct, ParallelLoop, Phase

__all__ = ["merge_adjacent_loops", "mergeable"]


def mergeable(a: ParallelLoop, b: ParallelLoop) -> bool:
    """Whether two adjacent loops can be fused into one spread loop.

    The model's criterion mirrors the paper's: both must be spread
    loops of the same construct with the same inner trip count and
    compatible memory behaviour, and (for this conservative analysis)
    independent -- which the phase list encodes by adjacency without an
    intervening serial section.
    """
    if a.is_main_cluster_only or b.is_main_cluster_only:
        return False
    if a.construct is not b.construct:
        return False
    if a.construct is LoopConstruct.SDOALL and a.n_inner != b.n_inner:
        return False
    if a.mem_rate != b.mem_rate:
        return False
    if a.serial_fraction != b.serial_fraction:
        return False
    return True


def _merge_pair(a: ParallelLoop, b: ParallelLoop) -> ParallelLoop:
    if a.construct is LoopConstruct.XDOALL:
        # Flat loops concatenate their iteration spaces.
        total_a = a.n_inner * a.work_ns_per_iter
        total_b = b.n_inner * b.work_ns_per_iter
        n_inner = a.n_inner + b.n_inner
        work = (total_a + total_b) // n_inner
        words = (
            a.n_inner * a.mem_words_per_iter + b.n_inner * b.mem_words_per_iter
        ) // n_inner
        return ParallelLoop(
            construct=a.construct,
            n_outer=1,
            n_inner=n_inner,
            work_ns_per_iter=work,
            mem_words_per_iter=words,
            mem_rate=a.mem_rate,
            page_base=a.page_base,
            iters_per_page=a.iters_per_page,
            work_skew=max(a.work_skew, b.work_skew),
            label=f"{a.label}+{b.label}",
        )
    # SDOALL: concatenate the outer iteration spaces (same inner shape).
    total_outer = a.n_outer + b.n_outer
    work = (
        a.n_outer * a.work_ns_per_iter + b.n_outer * b.work_ns_per_iter
    ) // total_outer
    words = (
        a.n_outer * a.mem_words_per_iter + b.n_outer * b.mem_words_per_iter
    ) // total_outer
    return ParallelLoop(
        construct=a.construct,
        n_outer=total_outer,
        n_inner=a.n_inner,
        work_ns_per_iter=work,
        mem_words_per_iter=words,
        mem_rate=a.mem_rate,
        page_base=a.page_base,
        iters_per_page=a.iters_per_page,
        work_skew=max(a.work_skew, b.work_skew),
        label=f"{a.label}+{b.label}",
    )


def merge_adjacent_loops(phases: list[Phase]) -> list[Phase]:
    """Fuse runs of adjacent, mergeable spread loops.

    Each fused run pays one setup, one post, and -- crucially -- one
    finish barrier instead of one per loop.  Returns a new phase list;
    the input is not modified.
    """
    merged: list[Phase] = []
    for phase in phases:
        previous = merged[-1] if merged else None
        if (
            isinstance(phase, ParallelLoop)
            and isinstance(previous, ParallelLoop)
            and mergeable(previous, phase)
        ):
            merged[-1] = _merge_pair(previous, phase)
        else:
            merged.append(phase)
    return merged
