"""Model of the Cedar Fortran runtime library.

Implements the parallel-loop execution protocol characterized in
Section 6 of the paper: helper tasks spinning for work, hierarchical
SDOALL/CDOALL distribution, flat XDOALL distribution through a
global-memory lock, and spin finish-barriers.
"""

from repro.runtime.library import CedarFortranRuntime
from repro.runtime.loops import LoopConstruct, ParallelLoop, Phase, SerialPhase
from repro.runtime.params import RuntimeParams
from repro.runtime.transform import merge_adjacent_loops, mergeable

__all__ = [
    "CedarFortranRuntime",
    "LoopConstruct",
    "ParallelLoop",
    "Phase",
    "RuntimeParams",
    "SerialPhase",
    "merge_adjacent_loops",
    "mergeable",
]
